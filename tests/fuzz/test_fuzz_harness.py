"""The differential fuzz harness itself: persistence, replay, shrinking.

The generative loop's own machinery must be trustworthy before its
verdicts mean anything: cases round-trip through JSON losslessly, the
committed corpus replays green, engine crashes surface as structured
mismatches (not raw tracebacks hypothesis can't shrink), and an
injected divergence produces a saved, reloadable reproducer.
"""

import json

import pytest

from repro.core import timing_kernels as tk
from repro.fuzz import (
    DifferentialMismatch,
    FuzzCase,
    default_corpus_dir,
    fuzz,
    replay_corpus,
    run_case,
)
from repro.fuzz.harness import CASE_FORMAT, FuzzReport, load_case, save_case

SMOKE_CASE = FuzzCase(
    factor=64,
    nodes=2,
    page_size=256,
    scheme="V-COMA",
    entries=8,
    organization="fa",
    workload={"kind": "named", "name": "radix", "intensity": 0.2},
    max_refs_per_node=100,
)


class TestCasePersistence:
    def test_round_trip_through_dict(self):
        payload = SMOKE_CASE.to_dict()
        assert payload["format"] == CASE_FORMAT
        assert FuzzCase.from_dict(payload) == SMOKE_CASE

    def test_save_and_load(self, tmp_path):
        path = save_case(SMOKE_CASE, tmp_path)
        assert path.parent == tmp_path
        assert path.name.startswith("case-") and path.suffix == ".json"
        assert load_case(path) == SMOKE_CASE
        # Content-addressed: saving the same case is idempotent.
        assert save_case(SMOKE_CASE, tmp_path) == path
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_literal_case_round_trip(self):
        case = FuzzCase(
            factor=32,
            nodes=2,
            page_size=256,
            scheme="L2-TLB",
            entries=4,
            organization="dm",
            workload={
                "kind": "literal",
                "pages": 16,
                "streams": [[[0, 0], [1, 64]], [[0, 64]]],
            },
        )
        again = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert again == case
        assert "literal[3 events]" in case.describe()


class TestRunCase:
    def test_smoke_case_agrees(self):
        info = run_case(SMOKE_CASE)
        assert info["backend"] in ("compiled", "scalar")

    def test_engine_crash_becomes_structured_mismatch(self):
        broken = FuzzCase.from_dict(SMOKE_CASE.to_dict())
        broken.workload = {"kind": "named", "name": "no-such-workload", "intensity": 0.2}
        with pytest.raises(DifferentialMismatch) as excinfo:
            run_case(broken)
        assert "engine crash" in str(excinfo.value)
        assert excinfo.value.case is broken


class TestCorpusReplay:
    def test_committed_corpus_replays_green(self):
        rows = replay_corpus()
        assert len(rows) >= 4  # the seeded regression corpus
        for row in rows:
            assert row["ok"], f"{row['name']}: {row['detail']}"

    @pytest.mark.skipif(
        tk.get_backend() is None, reason="compiled timing backend unavailable"
    )
    def test_corpus_exercises_compiled_engine(self):
        rows = replay_corpus()
        assert any(row["detail"] == "compiled" for row in rows)

    def test_unreadable_corpus_file_is_a_failure(self, tmp_path):
        (tmp_path / "case-bogus.json").write_text('{"format": 1, "nope": true}')
        (row,) = replay_corpus(tmp_path)
        assert not row["ok"]
        assert "unreadable case" in row["detail"]

    def test_missing_corpus_dir_is_empty_not_an_error(self, tmp_path):
        assert replay_corpus(tmp_path / "absent") == []

    def test_default_corpus_is_the_committed_package_dir(self):
        assert default_corpus_dir().is_dir()
        assert list(default_corpus_dir().glob("case-*.json"))


class TestFuzzLoop:
    def test_small_budget_runs_clean(self):
        seen = []
        report = fuzz(max_examples=10, seed=7, on_case=lambda c, i: seen.append(c))
        assert report.ok
        assert report.cases_run >= 10
        assert report.failure is None and report.saved_to is None
        assert len(seen) == report.cases_run
        assert "no divergence" in report.render()

    def test_fixed_seed_is_reproducible(self):
        def collect(seed):
            cases = []
            fuzz(max_examples=5, seed=seed, on_case=lambda c, i: cases.append(c.to_dict()))
            return cases

        assert collect(3) == collect(3)

    def test_divergence_saves_shrunk_reproducer(self, tmp_path, monkeypatch):
        from repro.fuzz import harness

        real_run_case = harness.run_case

        def sabotaged(case):
            info = real_run_case(case)
            raise DifferentialMismatch(case, ["injected: forced divergence"])

        monkeypatch.setattr(harness, "run_case", sabotaged)
        report = harness.fuzz(max_examples=10, seed=0, corpus_dir=tmp_path)
        assert not report.ok
        assert report.failure is not None
        assert "injected" in report.error
        assert report.saved_to is not None
        # The shrunk case landed in the corpus and reloads cleanly.
        reloaded = load_case(report.saved_to)
        assert reloaded == report.failure
        assert "DIVERGENCE" in report.render()

    def test_report_render_shapes(self):
        ok = FuzzReport(cases_run=3, compiled_cases=3)
        assert ok.ok and "3 cases" in ok.render()
        bad = FuzzReport(cases_run=1, failure=SMOKE_CASE, error="x", saved_to="p")
        assert not bad.ok
        assert "saved reproducer: p" in bad.render()
