"""Chaos suite: the supervised runner under injected faults.

The acceptance scenarios for the fault-tolerant runner: a 12-job grid
driven with ``jobs=2`` keeps returning 12 outcomes while workers crash,
hang, or hit transient I/O errors — failures come back as structured
:class:`JobFailure` values under ``keep_going``, retried-to-success runs
stay bit-identical to a clean run — and an interrupted sweep resumed
via its manifest re-runs only the missing jobs.

Everything here runs on the tiny 2-node machine with 300 references per
node, so the whole file stays inside the CI timeout guard even though
every test forks real worker processes.
"""

import json
import multiprocessing
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro import MachineParams, Scheme
from repro.common.errors import ProtocolError, RunInterrupted
from repro.runner import BatchRunner, FaultPlan, JobSpec

GRID_WORKLOADS = ("fft", "radix")
GRID_SCHEMES = (Scheme.V_COMA, Scheme.L0_TLB)
GRID_SIZES = (8, 32, 128)


@pytest.fixture(scope="module")
def params():
    return MachineParams.scaled_down(factor=256, nodes=2, page_size=256)


@pytest.fixture(scope="module")
def grid(params):
    """The 12-job grid: 2 workloads x 2 schemes x 3 TLB/DLB sizes."""
    specs = [
        JobSpec.timing(
            params,
            scheme,
            name,
            entries,
            max_refs_per_node=300,
            overrides={"intensity": 0.2},
        )
        for name in GRID_WORKLOADS
        for scheme in GRID_SCHEMES
        for entries in GRID_SIZES
    ]
    assert len(specs) == 12
    return specs


@pytest.fixture(scope="module")
def baseline(grid):
    """Clean serial run of the grid; chaos runs must match it bit for bit."""
    jobs = BatchRunner(jobs=1).run(grid)
    return [job.summary.to_dict() for job in jobs]


def assert_no_leaked_workers():
    assert multiprocessing.active_children() == []


class TestChaosGrid:
    def test_worker_crashes_are_retried_to_success(self, grid, baseline):
        plan = FaultPlan().crash(3).crash(7)
        runner = BatchRunner(jobs=2, retries=2, retry_delay=0.01, fault_plan=plan)
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12 and all(job.ok for job in jobs)
        assert runner.stats.worker_deaths == 2
        assert runner.stats.retries == 2
        assert jobs[3].attempts == 2 and jobs[7].attempts == 2
        assert [job.summary.to_dict() for job in jobs] == baseline

    def test_worker_crash_without_retries_is_structured(self, grid, baseline):
        plan = FaultPlan().crash(5, times=None)
        runner = BatchRunner(
            jobs=2, retries=0, keep_going=True, fault_plan=plan
        )
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12
        failed = [job for job in jobs if not job.ok]
        assert [job.spec for job in failed] == [grid[5]]
        failure = failed[0]
        assert failure.worker_died and failure.transient
        assert failure.error_type == "WorkerDied"
        assert failure.summary is None
        # The survivors are untouched by their neighbour's death.
        good = [job.summary.to_dict() for job in jobs if job.ok]
        assert good == baseline[:5] + baseline[6:]

    def test_hang_is_killed_and_retried_within_timeout(self, grid, baseline):
        plan = FaultPlan().hang(4, seconds=60.0, times=1)
        runner = BatchRunner(
            jobs=2, retries=1, retry_delay=0.01, timeout=2.0, fault_plan=plan
        )
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12 and all(job.ok for job in jobs)
        assert runner.stats.timeouts == 1
        assert jobs[4].attempts == 2
        assert [job.summary.to_dict() for job in jobs] == baseline

    def test_persistent_hang_becomes_timeout_failure(self, grid):
        plan = FaultPlan().hang(9, seconds=60.0, times=None)
        runner = BatchRunner(
            jobs=2,
            retries=1,
            retry_delay=0.01,
            timeout=1.0,
            keep_going=True,
            fault_plan=plan,
        )
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12
        failure = jobs[9]
        assert not failure.ok
        assert failure.timed_out and failure.transient
        assert failure.error_type == "JobTimeout"
        assert failure.attempts == 2
        assert runner.stats.timeouts == 2
        assert sum(1 for job in jobs if job.ok) == 11

    def test_transient_oserrors_are_retried_to_success(self, grid, baseline):
        plan = (
            FaultPlan()
            .transient(1, times=1)
            .transient(6, times=2)
            .transient(11, times=1)
        )
        runner = BatchRunner(jobs=2, retries=2, retry_delay=0.01, fault_plan=plan)
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12 and all(job.ok for job in jobs)
        assert runner.stats.retries == 4
        assert jobs[6].attempts == 3
        assert [job.summary.to_dict() for job in jobs] == baseline

    def test_deterministic_failure_fails_fast_and_is_never_retried(self, grid):
        plan = FaultPlan().raising(2, "ProtocolError", "injected bug")
        runner = BatchRunner(jobs=2, retries=3, retry_delay=0.01, fault_plan=plan)
        with pytest.raises(ProtocolError, match="injected bug"):
            runner.run(grid)
        assert_no_leaked_workers()
        assert runner.stats.retries == 0
        assert runner.stats.deterministic_failures == 1

    def test_deterministic_failure_under_keep_going(self, grid, baseline):
        plan = FaultPlan().raising(2, "ProtocolError", "injected bug")
        runner = BatchRunner(
            jobs=2, retries=3, retry_delay=0.01, keep_going=True, fault_plan=plan
        )
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12
        failure = jobs[2]
        assert not failure.ok and not failure.transient
        assert failure.attempts == 1, "deterministic bugs must not burn retries"
        assert isinstance(failure.exception(), ProtocolError)
        assert "injected bug" in failure.traceback
        good = [job.summary.to_dict() for job in jobs if job.ok]
        assert good == baseline[:2] + baseline[3:]

    def test_mixed_chaos_still_returns_every_job(self, grid, baseline):
        """Crash + hang + transient + deterministic bug in one sweep."""
        plan = (
            FaultPlan()
            .crash(0, times=1)
            .hang(4, seconds=60.0, times=1)
            .transient(8, times=1)
            .raising(10, "ProtocolError", "injected bug", times=None)
        )
        runner = BatchRunner(
            jobs=2,
            retries=2,
            retry_delay=0.01,
            timeout=2.0,
            keep_going=True,
            fault_plan=plan,
        )
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12
        assert [index for index, job in enumerate(jobs) if not job.ok] == [10]
        assert runner.stats.worker_deaths == 1
        assert runner.stats.timeouts == 1
        assert runner.stats.retries == 3
        assert runner.stats.deterministic_failures == 1
        good = [job.summary.to_dict() for job in jobs if job.ok]
        assert good == baseline[:10] + baseline[11:]


class TestInterruptAndResume:
    def test_sigint_resume_runs_only_missing_jobs(
        self, grid, baseline, tmp_path
    ):
        """A SIGINT'd sweep resumes from its manifest bit-identically."""

        def interrupt_late(index, total, job):
            if index >= 5:
                raise KeyboardInterrupt  # what SIGINT raises in the parent

        runner = BatchRunner(
            jobs=2,
            timeout=120.0,  # forces the supervised (worker) path
            progress=interrupt_late,
            manifest_dir=tmp_path,
        )
        with pytest.raises(RunInterrupted) as excinfo:
            runner.run(grid)
        assert_no_leaked_workers()
        err = excinfo.value
        assert err.run_id == runner.run_id
        assert 5 <= err.completed < 12 and err.total == 12
        assert f"--resume {err.run_id}" in str(err)

        resumed = BatchRunner(jobs=2, manifest_dir=tmp_path, resume=err.run_id)
        jobs = resumed.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12 and all(job.ok for job in jobs)
        # Only the jobs the interrupt lost are re-simulated...
        assert resumed.stats.from_manifest == err.completed
        assert resumed.simulations_run == 12 - err.completed
        # ...and the merged grid is bit-identical to a clean run.
        assert [job.summary.to_dict() for job in jobs] == baseline

    def test_resume_of_completed_run_simulates_nothing(self, grid, tmp_path):
        first = BatchRunner(jobs=1, manifest_dir=tmp_path)
        first.run(grid)
        resumed = BatchRunner(jobs=1, manifest_dir=tmp_path, resume=first.run_id)
        jobs = resumed.run(grid)
        assert all(job.ok and job.from_manifest for job in jobs)
        assert resumed.simulations_run == 0


# ----------------------------------------------------------------------
# service tier under chaos: killed remote workers, dropped clients
# ----------------------------------------------------------------------
def spawn_worker(port: int, delay: float = 0.0) -> subprocess.Popen:
    """A real ``repro worker`` process dialing the hub.

    ``delay`` maps to ``REPRO_WORKER_DELAY``: the worker provably holds
    each job for at least that long, which is the window the SIGKILL
    test aims at.
    """
    env = os.environ.copy()
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if delay:
        env["REPRO_WORKER_DELAY"] = str(delay)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", f"127.0.0.1:{port}", "--no-reconnect"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


@pytest.fixture
def service_with_workers():
    """A live service fronting a worker hub plus two real remote
    workers (loopback subprocesses)."""
    from repro.service import (
        ServiceClient, ServiceThread, SimulationService, WorkerHub,
    )

    hub = WorkerHub()
    workers = [spawn_worker(hub.port, delay=0.5) for _ in range(2)]
    service = SimulationService(hub=hub, retries=2)
    thread = ServiceThread(service)
    host, port = thread.start()
    try:
        assert hub.wait_for_workers(2, timeout=30), "workers never dialed in"
        yield service, ServiceClient(host, port), hub, workers
    finally:
        for proc in workers:
            proc.kill()
            proc.wait(timeout=10)
        thread.stop()


class TestServiceChaos:
    def test_sigkill_worker_mid_job_redispatches(
        self, grid, baseline, service_with_workers
    ):
        """SIGKILL a remote worker holding a job: the hub detects the
        dead socket, re-dispatches, and the grid completes
        bit-identically on the survivor."""
        service, client, hub, workers = service_with_workers
        info = client.submit(grid)
        run_id = info["run"]

        # Wait until some worker is provably mid-job, then shoot it.
        victim_pid = None
        deadline = time.monotonic() + 60
        while victim_pid is None and time.monotonic() < deadline:
            busy = [w for w in client.workers()["workers"] if w["busy"]]
            if busy:
                victim_pid = busy[0]["pid"]
                break
            time.sleep(0.05)
        assert victim_pid is not None, "no job ever landed on a worker"
        os.kill(victim_pid, signal.SIGKILL)

        final = client.wait(run_id, timeout=300, poll=0.1)
        assert final["state"] == "done"
        # Remote workers counted toward the parallelism for real: the
        # 1-CPU clamp does not apply to the pool path.
        assert final["effective_jobs"] == 2
        stats = final["grid_stats"]
        assert stats["worker_deaths"] >= 1
        assert stats["completed"] == 12 and stats["failed"] == 0
        payload = client.results(run_id)
        fetched = [entry["summary"] for entry in payload["results"]]
        assert fetched == [json.loads(json.dumps(s)) for s in baseline]
        # The killed worker really is gone; the survivor carried it.
        assert hub.worker_count() == 1

    def test_client_disconnect_mid_poll_leaves_server_healthy(
        self, grid, service_with_workers
    ):
        """Clients that vanish mid-request or mid-response must not
        take the server (or the run) down with them."""
        service, client, hub, workers = service_with_workers
        run_id = client.submit(grid[:4])["run"]
        host, port = service.address

        # Half a request, then gone.
        sock = socket.create_connection((host, port))
        sock.sendall(f"GET /runs/{run_id}/status HTTP/1.1\r\n"
                     "Host: chaos\r\n".encode())  # headers never finish
        sock.close()

        # Full request, but the client disappears before reading.
        sock = socket.create_connection((host, port))
        sock.sendall(f"GET /runs/{run_id}/status HTTP/1.1\r\n"
                     "Host: chaos\r\n\r\n".encode())
        sock.close()

        # Garbage on the wire answers 400 without wedging the loop.
        sock = socket.create_connection((host, port))
        sock.sendall(b"NOT-HTTP\r\n\r\n")
        sock.recv(256)
        sock.close()

        assert client.healthz()["ok"] is True
        final = client.wait(run_id, timeout=300, poll=0.1)
        assert final["state"] == "done"
        assert final["failed"] == 0
