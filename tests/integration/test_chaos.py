"""Chaos suite: the supervised runner under injected faults.

The acceptance scenarios for the fault-tolerant runner: a 12-job grid
driven with ``jobs=2`` keeps returning 12 outcomes while workers crash,
hang, or hit transient I/O errors — failures come back as structured
:class:`JobFailure` values under ``keep_going``, retried-to-success runs
stay bit-identical to a clean run — and an interrupted sweep resumed
via its manifest re-runs only the missing jobs.

Everything here runs on the tiny 2-node machine with 300 references per
node, so the whole file stays inside the CI timeout guard even though
every test forks real worker processes.
"""

import multiprocessing

import pytest

from repro import MachineParams, Scheme
from repro.common.errors import ProtocolError, RunInterrupted
from repro.runner import BatchRunner, FaultPlan, JobSpec

GRID_WORKLOADS = ("fft", "radix")
GRID_SCHEMES = (Scheme.V_COMA, Scheme.L0_TLB)
GRID_SIZES = (8, 32, 128)


@pytest.fixture(scope="module")
def params():
    return MachineParams.scaled_down(factor=256, nodes=2, page_size=256)


@pytest.fixture(scope="module")
def grid(params):
    """The 12-job grid: 2 workloads x 2 schemes x 3 TLB/DLB sizes."""
    specs = [
        JobSpec.timing(
            params,
            scheme,
            name,
            entries,
            max_refs_per_node=300,
            overrides={"intensity": 0.2},
        )
        for name in GRID_WORKLOADS
        for scheme in GRID_SCHEMES
        for entries in GRID_SIZES
    ]
    assert len(specs) == 12
    return specs


@pytest.fixture(scope="module")
def baseline(grid):
    """Clean serial run of the grid; chaos runs must match it bit for bit."""
    jobs = BatchRunner(jobs=1).run(grid)
    return [job.summary.to_dict() for job in jobs]


def assert_no_leaked_workers():
    assert multiprocessing.active_children() == []


class TestChaosGrid:
    def test_worker_crashes_are_retried_to_success(self, grid, baseline):
        plan = FaultPlan().crash(3).crash(7)
        runner = BatchRunner(jobs=2, retries=2, retry_delay=0.01, fault_plan=plan)
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12 and all(job.ok for job in jobs)
        assert runner.stats.worker_deaths == 2
        assert runner.stats.retries == 2
        assert jobs[3].attempts == 2 and jobs[7].attempts == 2
        assert [job.summary.to_dict() for job in jobs] == baseline

    def test_worker_crash_without_retries_is_structured(self, grid, baseline):
        plan = FaultPlan().crash(5, times=None)
        runner = BatchRunner(
            jobs=2, retries=0, keep_going=True, fault_plan=plan
        )
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12
        failed = [job for job in jobs if not job.ok]
        assert [job.spec for job in failed] == [grid[5]]
        failure = failed[0]
        assert failure.worker_died and failure.transient
        assert failure.error_type == "WorkerDied"
        assert failure.summary is None
        # The survivors are untouched by their neighbour's death.
        good = [job.summary.to_dict() for job in jobs if job.ok]
        assert good == baseline[:5] + baseline[6:]

    def test_hang_is_killed_and_retried_within_timeout(self, grid, baseline):
        plan = FaultPlan().hang(4, seconds=60.0, times=1)
        runner = BatchRunner(
            jobs=2, retries=1, retry_delay=0.01, timeout=2.0, fault_plan=plan
        )
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12 and all(job.ok for job in jobs)
        assert runner.stats.timeouts == 1
        assert jobs[4].attempts == 2
        assert [job.summary.to_dict() for job in jobs] == baseline

    def test_persistent_hang_becomes_timeout_failure(self, grid):
        plan = FaultPlan().hang(9, seconds=60.0, times=None)
        runner = BatchRunner(
            jobs=2,
            retries=1,
            retry_delay=0.01,
            timeout=1.0,
            keep_going=True,
            fault_plan=plan,
        )
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12
        failure = jobs[9]
        assert not failure.ok
        assert failure.timed_out and failure.transient
        assert failure.error_type == "JobTimeout"
        assert failure.attempts == 2
        assert runner.stats.timeouts == 2
        assert sum(1 for job in jobs if job.ok) == 11

    def test_transient_oserrors_are_retried_to_success(self, grid, baseline):
        plan = (
            FaultPlan()
            .transient(1, times=1)
            .transient(6, times=2)
            .transient(11, times=1)
        )
        runner = BatchRunner(jobs=2, retries=2, retry_delay=0.01, fault_plan=plan)
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12 and all(job.ok for job in jobs)
        assert runner.stats.retries == 4
        assert jobs[6].attempts == 3
        assert [job.summary.to_dict() for job in jobs] == baseline

    def test_deterministic_failure_fails_fast_and_is_never_retried(self, grid):
        plan = FaultPlan().raising(2, "ProtocolError", "injected bug")
        runner = BatchRunner(jobs=2, retries=3, retry_delay=0.01, fault_plan=plan)
        with pytest.raises(ProtocolError, match="injected bug"):
            runner.run(grid)
        assert_no_leaked_workers()
        assert runner.stats.retries == 0
        assert runner.stats.deterministic_failures == 1

    def test_deterministic_failure_under_keep_going(self, grid, baseline):
        plan = FaultPlan().raising(2, "ProtocolError", "injected bug")
        runner = BatchRunner(
            jobs=2, retries=3, retry_delay=0.01, keep_going=True, fault_plan=plan
        )
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12
        failure = jobs[2]
        assert not failure.ok and not failure.transient
        assert failure.attempts == 1, "deterministic bugs must not burn retries"
        assert isinstance(failure.exception(), ProtocolError)
        assert "injected bug" in failure.traceback
        good = [job.summary.to_dict() for job in jobs if job.ok]
        assert good == baseline[:2] + baseline[3:]

    def test_mixed_chaos_still_returns_every_job(self, grid, baseline):
        """Crash + hang + transient + deterministic bug in one sweep."""
        plan = (
            FaultPlan()
            .crash(0, times=1)
            .hang(4, seconds=60.0, times=1)
            .transient(8, times=1)
            .raising(10, "ProtocolError", "injected bug", times=None)
        )
        runner = BatchRunner(
            jobs=2,
            retries=2,
            retry_delay=0.01,
            timeout=2.0,
            keep_going=True,
            fault_plan=plan,
        )
        jobs = runner.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12
        assert [index for index, job in enumerate(jobs) if not job.ok] == [10]
        assert runner.stats.worker_deaths == 1
        assert runner.stats.timeouts == 1
        assert runner.stats.retries == 3
        assert runner.stats.deterministic_failures == 1
        good = [job.summary.to_dict() for job in jobs if job.ok]
        assert good == baseline[:10] + baseline[11:]


class TestInterruptAndResume:
    def test_sigint_resume_runs_only_missing_jobs(
        self, grid, baseline, tmp_path
    ):
        """A SIGINT'd sweep resumes from its manifest bit-identically."""

        def interrupt_late(index, total, job):
            if index >= 5:
                raise KeyboardInterrupt  # what SIGINT raises in the parent

        runner = BatchRunner(
            jobs=2,
            timeout=120.0,  # forces the supervised (worker) path
            progress=interrupt_late,
            manifest_dir=tmp_path,
        )
        with pytest.raises(RunInterrupted) as excinfo:
            runner.run(grid)
        assert_no_leaked_workers()
        err = excinfo.value
        assert err.run_id == runner.run_id
        assert 5 <= err.completed < 12 and err.total == 12
        assert f"--resume {err.run_id}" in str(err)

        resumed = BatchRunner(jobs=2, manifest_dir=tmp_path, resume=err.run_id)
        jobs = resumed.run(grid)
        assert_no_leaked_workers()
        assert len(jobs) == 12 and all(job.ok for job in jobs)
        # Only the jobs the interrupt lost are re-simulated...
        assert resumed.stats.from_manifest == err.completed
        assert resumed.simulations_run == 12 - err.completed
        # ...and the merged grid is bit-identical to a clean run.
        assert [job.summary.to_dict() for job in jobs] == baseline

    def test_resume_of_completed_run_simulates_nothing(self, grid, tmp_path):
        first = BatchRunner(jobs=1, manifest_dir=tmp_path)
        first.run(grid)
        resumed = BatchRunner(jobs=1, manifest_dir=tmp_path, resume=first.run_id)
        jobs = resumed.run(grid)
        assert all(job.ok and job.from_manifest for job in jobs)
        assert resumed.simulations_run == 0
