"""End-to-end runs: every workload under every scheme stays coherent
and produces sane statistics."""

import pytest

from repro import Machine, Scheme, Simulator, make_workload
from repro.system.taps import TimingAgent

MAX_REFS = 1200


@pytest.fixture
def params(small_params):
    return small_params


class TestAllWorkloadsAllSchemes:
    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_run_completes_coherently(self, params, workload_name, scheme):
        workload = make_workload(workload_name, intensity=0.15)
        machine = Machine(params, scheme, workload)
        result = Simulator(machine, max_refs_per_node=MAX_REFS).run()
        machine.engine.check_invariants()
        assert result.total_time > 0
        assert result.total_references > 0
        # Conservation: every node's account covers the whole run.
        for breakdown in result.breakdowns:
            assert breakdown.total == result.total_time

    def test_vcoma_timing_run(self, params, workload_name):
        workload = make_workload(workload_name, intensity=0.15)
        agent = TimingAgent(params, Scheme.V_COMA, entries=8)
        machine = Machine(params, Scheme.V_COMA, workload, agent=agent)
        result = Simulator(machine, max_refs_per_node=MAX_REFS).run()
        machine.engine.check_invariants()
        assert agent.total_accesses > 0
        # Translation stall is bounded by the total miss penalties;
        # misses on the injection path are never charged to a processor.
        agg = result.aggregate_breakdown()
        assert 0 < agg.tlb_stall <= agent.total_misses * params.translation_miss_penalty
        assert agg.tlb_stall % params.translation_miss_penalty == 0


class TestDeterminism:
    def test_identical_runs_identical_results(self, params):
        def run():
            machine = Machine(params, Scheme.V_COMA, make_workload("fft", intensity=0.15))
            return Simulator(machine, max_refs_per_node=800).run()

        a, b = run(), run()
        assert a.total_time == b.total_time
        assert a.counters.to_dict() == b.counters.to_dict()

    def test_seed_changes_results(self, params):
        machine_a = Machine(params, Scheme.V_COMA, make_workload("raytrace", intensity=0.15))
        params_b = params.replace(seed=777)
        machine_b = Machine(params_b, Scheme.V_COMA, make_workload("raytrace", intensity=0.15))
        a = Simulator(machine_a, max_refs_per_node=800).run()
        b = Simulator(machine_b, max_refs_per_node=800).run()
        # Different RNG streams shift something (timing or traffic).
        assert (
            a.total_time != b.total_time
            or a.counters.to_dict() != b.counters.to_dict()
        )


class TestConsistencyAcrossSchemes:
    def test_reference_counts_scheme_independent(self, params):
        counts = {}
        for scheme in (Scheme.L0_TLB, Scheme.V_COMA):
            machine = Machine(params, scheme, make_workload("ocean", intensity=0.15))
            result = Simulator(machine, max_refs_per_node=800).run()
            counts[scheme] = result.total_references
        assert counts[Scheme.L0_TLB] == counts[Scheme.V_COMA]

    def test_flc_behaviour_identical_between_virtual_schemes(self, params):
        """L3-TLB and V-COMA differ only in where translation happens;
        with a no-op agent their hierarchies behave identically."""
        results = {}
        for scheme in (Scheme.L3_TLB, Scheme.V_COMA):
            machine = Machine(params, scheme, make_workload("fft", intensity=0.15))
            result = Simulator(machine, max_refs_per_node=800).run()
            results[scheme] = (
                sum(n.flc.misses for n in machine.nodes),
                sum(n.slc.misses for n in machine.nodes),
                result.total_time,
            )
        assert results[Scheme.L3_TLB] == results[Scheme.V_COMA]
