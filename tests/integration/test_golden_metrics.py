"""Golden-snapshot suite: the metrics surface of a tiny seeded run.

One deterministic 4-node RADIX simulation per scheme (the physical
baseline L0-TLB, the split-cache L2-TLB point, and V-COMA), exported
through :func:`repro.obs.export.registry_from_summary` and compared
field-by-field against the JSON snapshots in ``tests/golden/``.  Any
change to the simulator, the protocol, the counters, or the exporter
that shifts a single sample shows up as a named diff line.

The snapshot deliberately contains no wall-clock values — only
simulated-time quantities — so it is bit-identical across hosts and
across worker counts (``--jobs 1`` vs ``--jobs 2``; asserted below).

To refresh after an intentional behavior change::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_metrics.py \
        --update-golden
"""

import json
from pathlib import Path

import pytest

from repro import MachineParams, Scheme
from repro.obs import to_json
from repro.obs.export import diff_registries
from repro.obs.metrics import MetricsRegistry
from repro.runner import BatchRunner, JobSpec

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
SCHEMES = (Scheme.L0_TLB, Scheme.L2_TLB, Scheme.V_COMA)
WORKLOAD = "radix"
INTENSITY = 0.2
ENTRIES = 8
MAX_REFS = 400


@pytest.fixture(scope="module")
def params():
    return MachineParams.scaled_down(
        factor=64, nodes=4, page_size=256
    ).replace(seed=1998)


def golden_path(scheme: Scheme) -> Path:
    slug = scheme.value.lower().replace("-", "_")
    return GOLDEN_DIR / f"metrics_{slug}_{WORKLOAD}.json"


def spec_for(params, scheme: Scheme) -> JobSpec:
    return JobSpec.timing(
        params,
        scheme,
        WORKLOAD,
        ENTRIES,
        max_refs_per_node=MAX_REFS,
        overrides={"intensity": INTENSITY},
        label=f"golden:{scheme.value}",
    )


def run_registry(params, scheme: Scheme, jobs: int = 1) -> MetricsRegistry:
    (job,) = BatchRunner(jobs=jobs, cache=None).run([spec_for(params, scheme)])
    assert job.ok, job.describe()
    return job.summary.to_metrics()


@pytest.mark.parametrize("scheme", SCHEMES, ids=[s.value for s in SCHEMES])
def test_metrics_match_golden(params, scheme, update_golden):
    registry = run_registry(params, scheme)
    path = golden_path(scheme)
    if update_golden:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(to_json(registry))
        pytest.skip(f"rewrote {path.name}")
    assert path.exists(), (
        f"missing golden snapshot {path}; run with --update-golden to create it"
    )
    golden = MetricsRegistry.from_dict(json.loads(path.read_text()))
    diff = diff_registries(golden, registry)
    assert not diff, f"{path.name} diverged:\n{diff}"
    # The serialized form must match bit-for-bit too (key order, float
    # formatting) — the goldens double as exporter-format regressions.
    assert to_json(registry) == path.read_text()


def test_golden_identical_across_worker_counts(params):
    serial = to_json(run_registry(params, Scheme.V_COMA, jobs=1))
    sharded = to_json(run_registry(params, Scheme.V_COMA, jobs=2))
    assert serial == sharded


def test_golden_roundtrips_through_dict(params):
    registry = run_registry(params, Scheme.V_COMA)
    clone = MetricsRegistry.from_dict(json.loads(to_json(registry)))
    assert clone.to_dict() == registry.to_dict()
    assert not diff_registries(registry, clone)


def test_diff_names_every_divergence(params):
    registry = run_registry(params, Scheme.V_COMA)
    mutated = MetricsRegistry.from_dict(registry.to_dict())
    mutated.counter("repro_events_total").inc(1, event="reads")
    mutated.counter("repro_golden_extra_total").inc(3)
    diff = diff_registries(registry, mutated)
    assert "repro_events_total" in diff
    assert "repro_golden_extra_total" in diff
