"""The exact Section 5.1 machine builds and runs.

The defaults elsewhere are scaled down for speed; this module proves the
paper's full configuration (32 nodes, 4 MB attraction memories, 4 KB
pages, 16/272-cycle messages) is genuinely runnable — just slower — by
simulating a short slice of two workloads on it.
"""

import pytest

from repro import MachineParams, Machine, Scheme, Simulator, TapPoint, make_workload
from repro.analysis import run_miss_sweep


@pytest.fixture(scope="module")
def paper_params():
    return MachineParams.paper_baseline()


class TestPaperBaseline:
    def test_geometry_matches_section_5_1(self, paper_params):
        p = paper_params
        assert (p.nodes, p.page_size) == (32, 4096)
        assert (p.request_msg_cycles, p.block_msg_cycles) == (16, 272)
        # 256 page colors of 128 slots, as derived in the paper's §6.
        assert p.global_page_sets == 256
        assert p.page_slots_per_global_set == 128

    def test_machine_builds_and_preloads(self, paper_params):
        machine = Machine(
            paper_params, Scheme.V_COMA, make_workload("barnes", intensity=0.02)
        )
        machine.engine.check_invariants()
        assert machine.counters["pages_preloaded"] > 100
        # Pressure stays comfortably under 1 (paper: working sets fit).
        assert machine.pressure.max_pressure() < 0.9

    def test_short_run_produces_paper_shapes(self, paper_params):
        result = run_miss_sweep(
            paper_params,
            make_workload("barnes", intensity=0.02),
            sizes=(8, 32),
            max_refs_per_node=400,
        )
        study = result.study_results()
        # Lock/unlock words are real stores too, so the L0 tap sees at
        # least one access per counted stream reference.
        assert study.accesses(TapPoint.L0) >= result.total_references
        # Filtering holds on the full-size machine too.
        assert study.misses(TapPoint.L3, 8) <= study.misses(TapPoint.L2_NO_WBACK, 8)
        assert study.misses(TapPoint.HOME, 32) <= study.misses(TapPoint.L3, 32)

    def test_physical_scheme_on_paper_machine(self, paper_params):
        machine = Machine(
            paper_params, Scheme.L0_TLB, make_workload("ocean", intensity=0.02)
        )
        result = Simulator(machine, max_refs_per_node=300).run()
        machine.engine.check_invariants()
        assert result.total_time > 0
