"""Reproduction-contract tests: the paper's qualitative results.

These tests assert the *shapes* the paper reports — who wins, in which
direction effects point — on scaled-down configurations.  They are the
executable form of EXPERIMENTS.md's claims.
"""

import pytest

from repro import MachineParams, Organization, Scheme, TapPoint, make_workload
from repro.analysis import (
    equivalent_tlb_size,
    pressure_profile,
    run_miss_sweep,
    run_timing,
)
from repro.workloads import RaytraceWorkload

PARAMS = MachineParams.scaled_down(factor=32, nodes=4, page_size=256)
SIZES = (8, 32, 128)
MAX_REFS = 5000


@pytest.fixture(scope="module")
def studies():
    """One sweep per benchmark, shared by every shape test."""
    out = {}
    for name in ("radix", "fft", "ocean", "barnes"):
        result = run_miss_sweep(
            PARAMS,
            make_workload(name, intensity=0.4),
            sizes=SIZES,
            max_refs_per_node=MAX_REFS,
        )
        out[name] = result.study_results()
    return out


class TestFilteringEffect:
    """Paper §5.2: misses decrease with the level of the TLB (when L2
    writebacks bypass the TLB) — each cache filters the stream."""

    @pytest.mark.parametrize("size", SIZES)
    def test_deeper_levels_miss_less(self, studies, size):
        for name, study in studies.items():
            l0 = study.misses(TapPoint.L0, size)
            l1 = study.misses(TapPoint.L1, size)
            l2 = study.misses(TapPoint.L2_NO_WBACK, size)
            l3 = study.misses(TapPoint.L3, size)
            # Allow small noise from random replacement (5%).
            assert l1 <= l0 * 1.05, name
            assert l2 <= l1 * 1.10, name
            assert l3 <= l2, name

    def test_accesses_filtered(self, studies):
        for name, study in studies.items():
            # L1 sees FLC misses + all stores; for write-every-block
            # patterns it can equal (never exceed) the L0 stream.
            assert study.accesses(TapPoint.L1) <= study.accesses(TapPoint.L0)
            assert study.accesses(TapPoint.L2_NO_WBACK) < study.accesses(TapPoint.L1)
            assert study.accesses(TapPoint.L3) <= study.accesses(TapPoint.L2_NO_WBACK)


class TestWritebackEffect:
    """Paper §5.2: SLC writebacks significantly hurt L2-TLB — with
    writebacks, L2-TLB can be worse than L0-TLB (seen on FFT/OCEAN)."""

    def test_writebacks_add_misses(self, studies):
        for name, study in studies.items():
            assert study.misses(TapPoint.L2, 8) >= study.misses(TapPoint.L2_NO_WBACK, 8)

    def test_l2_with_writebacks_can_exceed_l0(self, studies):
        worse_somewhere = any(
            studies[name].misses(TapPoint.L2, 8) > studies[name].misses(TapPoint.L0, 8)
            for name in ("fft", "ocean")
        )
        assert worse_somewhere


class TestSharingAndPrefetching:
    """Paper §5.2: the DLB benefits from shared, non-replicated entries;
    in RADIX a small DLB beats much larger per-node TLBs."""

    def test_vcoma_beats_l3(self, studies):
        for name, study in studies.items():
            # At tiny sizes both structures thrash and interleaving noise
            # can cost the DLB a few percent; from 32 entries up the
            # sharing effect must win outright.
            assert (
                study.misses(TapPoint.HOME, 8)
                <= study.misses(TapPoint.L3, 8) * 1.10
            ), name
            for size in (32, 128):
                assert (
                    study.misses(TapPoint.HOME, size)
                    < study.misses(TapPoint.L3, size)
                ), (name, size)

    def test_radix_small_dlb_beats_much_larger_tlbs(self, studies):
        study = studies["radix"]
        dlb8 = study.misses(TapPoint.HOME, 8)
        assert dlb8 < study.misses(TapPoint.L0, 32)
        assert dlb8 < study.misses(TapPoint.L3, 32)

    def test_radix_tlb_curve_flat_dlb_curve_steep(self, studies):
        """RADIX: 'no clear significant working set' for TLBs, while the
        DLB improves fast with size."""
        study = studies["radix"]
        l0_drop = study.misses(TapPoint.L0, 8) / max(1, study.misses(TapPoint.L0, 32))
        dlb_drop = study.misses(TapPoint.HOME, 8) / max(1, study.misses(TapPoint.HOME, 32))
        assert dlb_drop > l0_drop

    def test_equivalent_tlb_size_far_exceeds_dlb(self, studies):
        """Paper Table 3: matching an 8-entry DLB takes TLBs several
        times larger."""
        for name in ("radix", "barnes"):
            study = studies[name]
            target = study.misses(TapPoint.HOME, 8)
            equivalent = equivalent_tlb_size(study, TapPoint.L0, target)
            assert equivalent > 16, name


class TestDirectMappedGap:
    """Paper Figure 9: the DM-vs-FA gap shrinks from L0 to V-COMA."""

    @pytest.fixture(scope="class")
    def dm_study(self):
        result = run_miss_sweep(
            PARAMS,
            make_workload("fft", intensity=0.4),
            sizes=(8, 32),
            orgs=(Organization.FULLY_ASSOCIATIVE, Organization.DIRECT_MAPPED),
            max_refs_per_node=MAX_REFS,
        )
        return result.study_results()

    def test_dm_never_better_much(self, dm_study):
        for tap in (TapPoint.L0, TapPoint.HOME):
            fa = dm_study.misses(tap, 8, Organization.FULLY_ASSOCIATIVE)
            dm = dm_study.misses(tap, 8, Organization.DIRECT_MAPPED)
            assert dm >= fa * 0.9

    def test_gap_shrinks_toward_vcoma(self, dm_study):
        # Evaluate where the FA buffer has real capacity (at 8 entries
        # everything thrashes and the gap is meaningless).
        def gap(tap):
            fa = dm_study.misses(tap, 32, Organization.FULLY_ASSOCIATIVE)
            dm = dm_study.misses(tap, 32, Organization.DIRECT_MAPPED)
            return (dm - fa) / max(1, fa)

        assert gap(TapPoint.HOME) <= gap(TapPoint.L0) + 0.10


class TestExecutionTime:
    """Paper §5.3/Table 4: translation is a big share of memory stall in
    L0-TLB and negligible in V-COMA."""

    @pytest.fixture(scope="class")
    def timing(self):
        runs = {}
        for scheme in (Scheme.L0_TLB, Scheme.V_COMA):
            runs[scheme] = run_timing(
                PARAMS,
                scheme,
                make_workload("fmm", intensity=0.4),
                entries=8,
                max_refs_per_node=3000,
            )
        return runs

    def test_l0_overhead_dominates_vcoma(self, timing):
        l0 = timing[Scheme.L0_TLB].translation_overhead_ratio()
        v = timing[Scheme.V_COMA].translation_overhead_ratio()
        assert l0 > 3 * v
        assert l0 > 0.05  # a visible overhead, as in Table 4

    def test_vcoma_overhead_small(self, timing):
        assert timing[Scheme.V_COMA].translation_overhead_ratio() < 0.08

    def test_bigger_tlb_reduces_overhead(self):
        small = run_timing(
            PARAMS, Scheme.L0_TLB, make_workload("fmm", intensity=0.4),
            entries=8, max_refs_per_node=2000,
        )
        big = run_timing(
            PARAMS, Scheme.L0_TLB, make_workload("fmm", intensity=0.4),
            entries=64, max_refs_per_node=2000,
        )
        assert (
            big.aggregate_breakdown().tlb_stall < small.aggregate_breakdown().tlb_stall
        )


class TestRaytracePadding:
    """Paper Figure 10 (DLB/8/V2): the 32 KB-style padding inflates
    sync/execution time in V-COMA; page alignment fixes it.  The effect
    grows with node count (more stacks collide per global set), so this
    class runs at 8 nodes."""

    PARAMS8 = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)

    @pytest.fixture(scope="class")
    def v1_v2(self):
        runs = {}
        for label, factory in (("v1", RaytraceWorkload), ("v2", RaytraceWorkload.v2)):
            runs[label] = run_timing(
                self.PARAMS8, Scheme.V_COMA, factory(), entries=8,
                max_refs_per_node=3000, contention=True,
            )
        return runs

    def test_v1_slower_than_v2(self, v1_v2):
        assert v1_v2["v1"].total_time > v1_v2["v2"].total_time * 1.10

    def test_v1_congests_the_network_more(self, v1_v2):
        v1 = v1_v2["v1"].counters
        v2 = v1_v2["v2"].counters
        assert v1["contention_cycles"] > 1.3 * v2["contention_cycles"]

    def test_v1_injects_more(self, v1_v2):
        assert v1_v2["v1"].counters["injections"] > 1.5 * max(
            1, v1_v2["v2"].counters["injections"]
        )

    def test_v1_pressure_concentrated(self):
        v1 = pressure_profile(self.PARAMS8, RaytraceWorkload())
        v2 = pressure_profile(self.PARAMS8, RaytraceWorkload.v2())
        imbalance = lambda prof: max(prof) / (sum(prof) / len(prof))
        assert imbalance(v1) > imbalance(v2) * 1.5


class TestPressureUniformity:
    """Paper Figure 11: without even trying, pressure is close to
    uniform across global sets for the regular benchmarks."""

    @pytest.mark.parametrize("name", ["radix", "fft", "ocean", "fmm", "barnes"])
    def test_profile_near_uniform(self, name):
        profile = pressure_profile(PARAMS, make_workload(name))
        mean = sum(profile) / len(profile)
        assert mean > 0
        assert max(profile) <= mean * 1.6
        assert min(profile) >= mean * 0.4
