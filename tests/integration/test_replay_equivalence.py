"""Record/replay must be bit-identical to the coupled scalar sweep.

The pipeline's whole claim is that miss counts are *exactly* those of a
:class:`~repro.system.taps.StudyAgent` run — not statistically close.
This suite runs the scalar reference path and the record/replay path on
the same specs and compares every number: per-scheme (all five of the
paper's translation schemes, via their tap points), per-organization,
per-size, plus the hierarchy-side summary the study rides on.  Both
kernel families are covered: the suite runs once with numpy (when
available) and once with the pure-Python fallback forced.
"""

import pytest

from repro import MachineParams
from repro.core.replay import NO_NUMPY_ENV, get_numpy
from repro.core.schemes import SCHEME_ORDER, TAP_OF_SCHEME
from repro.core.tlb import Organization
from repro.runner import JobSpec, TraceStore

WORKLOADS = ("radix", "ocean")
SIZES = (8, 32, 128)
ORGS = (
    Organization.FULLY_ASSOCIATIVE,
    Organization.SET_ASSOCIATIVE,
    Organization.DIRECT_MAPPED,
)


def surface(summary):
    """Everything simulated — the engine-provenance stamps are allowed
    (expected, even) to differ between the replay and scalar paths."""
    data = summary.to_dict()
    data.pop("backend", None)
    data.pop("fallback_reason", None)
    return data


@pytest.fixture(scope="module")
def params():
    return MachineParams.scaled_down(factor=256, nodes=2, page_size=256)


def make_spec(params, workload):
    return JobSpec.sweep(
        params,
        workload,
        sizes=SIZES,
        orgs=ORGS,
        max_refs_per_node=400,
        overrides={"intensity": 0.2},
    )


@pytest.fixture(scope="module")
def scalar_summaries(params):
    """The coupled reference runs, shared across every test."""
    return {
        workload: make_spec(params, workload).execute(replay=False)
        for workload in WORKLOADS
    }


@pytest.fixture(
    scope="module",
    params=["numpy", "fallback"],
    ids=["numpy", "no-numpy"],
)
def replay_summaries(request, params):
    """The replay runs, once per kernel family."""
    if request.param == "numpy" and get_numpy() is None:
        pytest.skip("numpy unavailable in this environment")
    monkeypatch = pytest.MonkeyPatch()
    if request.param == "fallback":
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
    try:
        return {
            workload: make_spec(params, workload).execute(replay=True)
            for workload in WORKLOADS
        }
    finally:
        monkeypatch.undo()


@pytest.mark.parametrize("workload", WORKLOADS)
class TestBitIdentical:
    def test_study_surface_identical(self, workload, scalar_summaries, replay_summaries):
        scalar = scalar_summaries[workload].study_results()
        replayed = replay_summaries[workload].study_results()
        assert replayed.to_dict() == scalar.to_dict()

    def test_every_scheme_every_design_point(
        self, workload, scalar_summaries, replay_summaries
    ):
        """All five paper schemes, every size × organization."""
        scalar = scalar_summaries[workload].study_results()
        replayed = replay_summaries[workload].study_results()
        for scheme in SCHEME_ORDER:
            tap = TAP_OF_SCHEME[scheme]
            for size in SIZES:
                for org in ORGS:
                    assert replayed.misses(tap, size, org) == scalar.misses(
                        tap, size, org
                    ), (scheme.value, size, org.value)
                    assert replayed.miss_rate(tap, size, org) == scalar.miss_rate(
                        tap, size, org
                    )

    def test_hierarchy_summary_identical(
        self, workload, scalar_summaries, replay_summaries
    ):
        """Time breakdowns/counters come from the recorded run and must
        equal the scalar run's (the capture agent never perturbs)."""
        assert surface(replay_summaries[workload]) == surface(
            scalar_summaries[workload]
        )


class TestThroughTraceStore:
    def test_disk_round_trip_preserves_equivalence(
        self, tmp_path, params, scalar_summaries
    ):
        """Record to disk, reload, replay: still bit-identical."""
        store = TraceStore(root=tmp_path)
        spec = make_spec(params, "radix")
        recorded = spec.execute(trace_store=store, replay=True)
        assert store.misses == 1 and len(store) == 1
        reloaded = spec.execute(trace_store=store, replay=True)
        assert store.hits == 1
        assert surface(recorded) == surface(scalar_summaries["radix"])
        assert surface(reloaded) == surface(scalar_summaries["radix"])

    def test_one_trace_serves_many_bank_grids(self, tmp_path, params):
        """Different sizes/orgs reuse the recording and still match."""
        store = TraceStore(root=tmp_path)
        first = JobSpec.sweep(
            params, "radix", sizes=(8, 32), max_refs_per_node=400,
            overrides={"intensity": 0.2},
        )
        second = JobSpec.sweep(
            params, "radix", sizes=(16, 64, 256),
            orgs=(Organization.SET_ASSOCIATIVE, Organization.DIRECT_MAPPED),
            max_refs_per_node=400, overrides={"intensity": 0.2},
        )
        first.execute(trace_store=store, replay=True)
        fast = second.execute(trace_store=store, replay=True)
        assert store.hits == 1 and len(store) == 1, "second grid must reuse the trace"
        slow = second.execute(replay=False)
        assert surface(fast) == surface(slow)
