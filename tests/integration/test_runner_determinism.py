"""Parallel execution must be invisible in the results.

Every simulation derives all of its randomness from named substreams of
``MachineParams.seed``, so a grid sharded across worker processes must
return byte-for-byte the same summaries as a serial run — and both must
match the direct :func:`run_miss_sweep` / :func:`run_timing` calls the
specs wrap.  Exercised over two workloads with different access
characters (RADIX's permutation traffic, FFT's transpose phases).
"""

import pytest

from repro import MachineParams, Scheme
from repro.analysis import run_miss_sweep, run_timing
from repro.core.schemes import TapPoint
from repro.core.tlb import Organization
from repro.runner import BatchRunner, JobSpec, ResultCache
from repro.workloads import make_workload

WORKLOADS = ("radix", "fft")
SIZES = (8, 32)
ORGS = (Organization.FULLY_ASSOCIATIVE, Organization.DIRECT_MAPPED)
INTENSITY = 0.2
MAX_REFS = 400


@pytest.fixture(scope="module")
def params():
    return MachineParams.scaled_down(factor=64, nodes=4, page_size=256)


@pytest.fixture(scope="module")
def grid(params):
    specs = []
    for name in WORKLOADS:
        specs.append(
            JobSpec.sweep(
                params, name, sizes=SIZES, orgs=ORGS,
                max_refs_per_node=MAX_REFS,
                overrides={"intensity": INTENSITY}, label=f"sweep:{name}",
            )
        )
        specs.append(
            JobSpec.timing(
                params, Scheme.V_COMA, name, 8,
                max_refs_per_node=MAX_REFS,
                overrides={"intensity": INTENSITY}, label=f"timing:{name}",
            )
        )
    return specs


def test_parallel_grid_identical_to_serial(params, grid):
    serial = BatchRunner(jobs=1).run(grid)
    parallel = BatchRunner(jobs=4).run(grid)
    assert [job.spec for job in parallel] == [job.spec for job in serial]
    for s_job, p_job in zip(serial, parallel):
        assert p_job.summary.to_dict() == s_job.summary.to_dict(), s_job.spec.describe()


def test_runner_matches_direct_calls(params, grid):
    jobs = BatchRunner(jobs=1).run(grid)
    by_label = {job.spec.label: job.summary for job in jobs}
    for name in WORKLOADS:
        direct_sweep = run_miss_sweep(
            params,
            make_workload(name, intensity=INTENSITY),
            sizes=SIZES,
            orgs=ORGS,
            max_refs_per_node=MAX_REFS,
        )
        summary = by_label[f"sweep:{name}"]
        for tap in TapPoint:
            for size in SIZES:
                for org in ORGS:
                    assert summary.study_results().misses(tap, size, org) == (
                        direct_sweep.study_results().misses(tap, size, org)
                    ), (name, tap, size, org)

        direct_timing = run_timing(
            params,
            Scheme.V_COMA,
            make_workload(name, intensity=INTENSITY),
            8,
            max_refs_per_node=MAX_REFS,
        )
        summary = by_label[f"timing:{name}"]
        assert summary.total_time == direct_timing.total_time
        assert summary.timing_summary() == direct_timing.timing_summary()
        assert summary.aggregate_breakdown() == direct_timing.aggregate_breakdown()


def test_cached_grid_identical_and_simulation_free(params, grid, tmp_path):
    cold = BatchRunner(jobs=1, cache=ResultCache(tmp_path))
    baseline = cold.run(grid)
    assert cold.simulations_run == len(grid)

    warm = BatchRunner(jobs=4, cache=ResultCache(tmp_path))
    reread = warm.run(grid)
    assert warm.simulations_run == 0
    assert warm.cache_hits == len(grid)
    for b_job, r_job in zip(baseline, reread):
        assert r_job.summary.to_dict() == b_job.summary.to_dict()
