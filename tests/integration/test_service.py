"""End-to-end tests of the simulation service tier.

The acceptance scenarios for ``repro serve``: a grid POSTed over HTTP
comes back bit-identical to a direct :class:`BatchRunner` run of the
same specs; N concurrent identical submissions execute exactly one
job (request coalescing, observable through
``repro_coalesced_requests_total`` *and* the manifest); distinct specs
never coalesce; and warm specs answer straight from the result cache
without touching the executor.

Every test runs a real server (private event loop on a background
thread, real sockets on an ephemeral port) against the per-test cache
root the autouse conftest fixture provides.
"""

import json
import threading

import pytest

from repro import MachineParams, Scheme
from repro.obs.runtime import counter_value
from repro.runner import BatchRunner, JobSpec
from repro.service import ServiceClient, ServiceThread, SimulationService


@pytest.fixture(scope="module")
def params():
    return MachineParams.scaled_down(factor=256, nodes=2, page_size=256)


@pytest.fixture(scope="module")
def grid(params):
    """Four cheap timing jobs: 2 workloads x 2 entry counts."""
    return [
        JobSpec.timing(
            params,
            Scheme.V_COMA,
            name,
            entries,
            max_refs_per_node=300,
            overrides={"intensity": 0.2},
        )
        for name in ("fft", "radix")
        for entries in (8, 32)
    ]


@pytest.fixture(scope="module")
def baseline(grid):
    """Direct runner results, JSON-normalized like the HTTP payload."""
    jobs = BatchRunner(jobs=1).run(grid)
    return [json.loads(json.dumps(job.summary.to_dict())) for job in jobs]


@pytest.fixture
def service():
    """A live in-process server; cache root comes from the isolated
    ``REPRO_CACHE_DIR`` the conftest fixture points at tmp_path."""
    svc = SimulationService()
    thread = ServiceThread(svc)
    host, port = thread.start()
    yield svc, ServiceClient(host, port)
    thread.stop()


def test_jobspec_json_round_trip_preserves_identity(params):
    """`from_dict(key())` must reproduce the content hash — the whole
    submission format rests on this."""
    specs = [
        JobSpec.timing(params, Scheme.L0_TLB, "ocean", 128,
                       max_refs_per_node=300, overrides={"intensity": 0.3}),
        JobSpec.sweep(params, "radix", sizes=(8, 32),
                      max_refs_per_node=200),
    ]
    for spec in specs:
        wire = json.loads(json.dumps(spec.key()))
        assert JobSpec.from_dict(wire).content_hash() == spec.content_hash()


class TestEndToEnd:
    def test_submit_poll_fetch_bit_identical(self, service, grid, baseline):
        svc, client = service
        info = client.submit(grid)
        assert info["specs"] == len(grid) and not info["coalesced"]
        final = client.wait(info["run"], timeout=180)
        assert final["state"] == "done"
        assert final["sources"] == {"cache": 0, "coalesced": 0,
                                    "executed": len(grid)}
        payload = client.results(info["run"])
        assert [entry["summary"] for entry in payload["results"]] == baseline
        assert all(entry["source"] == "executed"
                   for entry in payload["results"])

    def test_warm_specs_serve_from_cache(self, service, grid, baseline):
        svc, client = service
        first = client.run(grid, timeout=180)
        assert first["state"] == "done"
        # Clear the submission table: the repeat POST must be satisfied
        # by the ResultCache ladder rung, not grid-identity replay.
        svc.submissions.clear()
        before = counter_value("repro_service_simulations_total")
        info = client.submit(grid)
        assert info["state"] == "done", "warm grid must finish synchronously"
        payload = client.results(info["run"])
        assert [entry["summary"] for entry in payload["results"]] == baseline
        assert all(entry["source"] == "cache" for entry in payload["results"])
        assert counter_value("repro_service_simulations_total") == before

    def test_status_exposes_manifest_heartbeats(self, service, grid):
        svc, client = service
        final = client.wait(client.submit(grid)["run"], timeout=180)
        manifest = final["manifest"]
        assert manifest["counts"]["ok"] == len(grid)
        assert manifest["pending"] == 0
        # Heartbeats carried the worker count the ETA divides by.
        assert manifest["workers"] == final["effective_jobs"] == 1

    def test_http_error_surface(self, service):
        svc, client = service
        status, body = client.request("GET", "/runs/nonexistent/status")
        assert status == 404
        status, body = client.request("POST", "/runs", {"specs": []})
        assert status == 400
        status, body = client.request("POST", "/runs",
                                      {"specs": [{"kind": "bogus"}]})
        assert status == 400 and "invalid job spec" in body["error"]
        status, body = client.request("GET", "/nope")
        assert status == 404
        assert client.healthz()["ok"] is True
        assert "repro_service_requests_total" in client.metrics()


class TestRequestCoalescing:
    def _concurrent_submits(self, client, specs, count):
        """POST the same grid from ``count`` threads at once."""
        barrier = threading.Barrier(count)
        infos, errors = [None] * count, []

        def post(slot):
            try:
                barrier.wait(timeout=10)
                infos[slot] = client.submit(specs)
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=post, args=(slot,))
                   for slot in range(count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        return infos

    def test_identical_submissions_execute_exactly_one_job(
        self, params, baseline, grid
    ):
        svc = SimulationService(execute_delay=1.0)
        thread = ServiceThread(svc)
        host, port = thread.start()
        client = ServiceClient(host, port)
        try:
            spec = grid[0]
            requests_before = counter_value("repro_coalesced_requests_total")
            sims_before = counter_value("repro_service_simulations_total")
            infos = self._concurrent_submits(client, [spec], count=6)
            # Every thread landed on the same run...
            assert len({info["run"] for info in infos}) == 1
            run_id = infos[0]["run"]
            final = client.wait(run_id, timeout=180)
            assert final["state"] == "done"
            assert final["requests"] == 6
            # ...the coalescing metric counted the five followers...
            assert (counter_value("repro_coalesced_requests_total")
                    - requests_before) == 5
            # ...exactly one simulation ran...
            assert (counter_value("repro_service_simulations_total")
                    - sims_before) == 1
            # ...and the manifest agrees: one landed job, total.
            manifest_path = svc.manifest_dir / f"{run_id}.jsonl"
            landed = [json.loads(line)
                      for line in manifest_path.read_text().splitlines()
                      if line.strip()]
            assert sum(1 for e in landed if e.get("status") == "ok") == 1
            # The coalesced result is still the real result.
            payload = client.results(run_id)
            assert payload["results"][0]["summary"] == baseline[0]
        finally:
            thread.stop()

    def test_distinct_specs_do_not_coalesce(self, grid):
        svc = SimulationService(execute_delay=0.5)
        thread = ServiceThread(svc)
        host, port = thread.start()
        client = ServiceClient(host, port)
        try:
            before = counter_value("repro_coalesced_requests_total")
            sims_before = counter_value("repro_service_simulations_total")
            results = [None, None]

            def post(slot, spec):
                results[slot] = client.submit([spec])

            threads = [threading.Thread(target=post, args=(slot, spec))
                       for slot, spec in enumerate(grid[:2])]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert results[0]["run"] != results[1]["run"]
            for info in results:
                assert client.wait(info["run"], timeout=180)["state"] == "done"
            assert counter_value("repro_coalesced_requests_total") == before
            assert (counter_value("repro_service_simulations_total")
                    - sims_before) == 2
        finally:
            thread.stop()

    def test_shared_spec_across_different_grids_coalesces(
        self, grid, baseline
    ):
        """Grid B arriving while grid A runs attaches to A's in-flight
        copy of their shared spec instead of re-executing it."""
        svc = SimulationService(execute_delay=1.0)
        thread = ServiceThread(svc)
        host, port = thread.start()
        client = ServiceClient(host, port)
        try:
            jobs_before = counter_value("repro_service_coalesced_jobs_total")
            sims_before = counter_value("repro_service_simulations_total")
            info_a = client.submit([grid[0], grid[1]])
            info_b = client.submit([grid[0], grid[2]])  # shares grid[0]
            assert info_a["run"] != info_b["run"]
            final_b = client.wait(info_b["run"], timeout=180)
            assert final_b["sources"]["coalesced"] == 1
            assert (counter_value("repro_service_coalesced_jobs_total")
                    - jobs_before) == 1
            client.wait(info_a["run"], timeout=180)
            # Three distinct specs -> exactly three simulations.
            assert (counter_value("repro_service_simulations_total")
                    - sims_before) == 3
            payload_b = client.results(info_b["run"])
            assert payload_b["results"][0]["summary"] == baseline[0]
            assert payload_b["results"][0]["source"] == "coalesced"
        finally:
            thread.stop()
