"""Swap-daemon extension wired into the machine (paper Section 4.3).

The paper preloads everything and never swaps; these tests exercise the
extension path: an over-committed global set triggers forced page-outs
through the protocol's injection-overflow hook instead of dying with
CapacityError.
"""

import pytest

from repro import CapacityError, CustomWorkload, Machine, Scheme, SegmentSpec, Simulator
from repro.system.refs import WRITE
from repro.workloads import RaytraceWorkload


def overcommit_workload(params):
    """Writes cycling through more same-color pages than one node's AM
    ways can hold — guaranteed master-injection pressure."""
    layout_colors = params.am_way_size // params.page_size

    def stream(node, ctx):
        data = ctx.segment("data")
        page = params.page_size
        stride = layout_colors * page  # same color every page
        pages = data.size // stride
        for sweep in range(3):
            for i in range(pages):
                yield WRITE, data.base + i * stride + (node * 32) % page

    # Enough same-color pages to overflow the whole global set once
    # every node replicates a few.
    span = (params.nodes * params.am_assoc + 2) * layout_colors * params.page_size
    return CustomWorkload([SegmentSpec("data", span)], stream, name="overcommit")


class TestOverflowSwapping:
    def test_overcommitted_set_raises_without_daemon(self, small_params):
        workload = overcommit_workload(small_params)
        with pytest.raises(CapacityError):
            # The preload itself overflows the global set.
            Machine(small_params, Scheme.V_COMA, workload)

    def test_daemon_keeps_preload_pressure_bounded(self, small_params):
        workload = RaytraceWorkload(stack_depth=2)
        machine = Machine(
            small_params, Scheme.V_COMA, workload, swap_threshold=0.95
        )
        assert machine.swap_daemon is not None
        assert machine.pressure.max_pressure() <= 1.0

    def test_run_with_daemon_survives_and_swaps(self, small_params):
        # Tighten one color hard: deep stacks at 4 nodes would normally
        # blow the set; the daemon must keep the run alive.
        workload = RaytraceWorkload(stack_depth=3, intensity=0.5)
        machine = Machine(
            small_params, Scheme.V_COMA, workload, swap_threshold=0.95
        )
        result = Simulator(machine, max_refs_per_node=2500).run()
        machine.engine.check_invariants()
        assert result.total_time > 0
        # Either it fit (fine) or pages were swapped to make room.
        swapped = machine.counters["pages_swapped_out"]
        assert swapped >= 0

    def test_swapped_pages_are_refaultable_state(self, small_params):
        """After a forced swap, the victim page is fully unmapped: no
        AM copies, no directory entry, no PTE."""
        workload = RaytraceWorkload(stack_depth=3, intensity=0.5)
        machine = Machine(
            small_params, Scheme.V_COMA, workload, swap_threshold=0.95
        )
        Simulator(machine, max_refs_per_node=2500).run()
        if machine.counters["pages_swapped_out"] == 0:
            pytest.skip("this configuration never needed to swap")
        mapped = sum(len(t) for t in machine.page_tables)
        expected = (
            machine.space.total_pages()
            - machine.counters["pages_swapped_out"]
            + machine.counters["pages_faulted_in"]
        )
        assert mapped == expected
        # Faults were observed and charged by the protocol.
        assert machine.engine.counters["page_faults"] == machine.counters["pages_faulted_in"]
