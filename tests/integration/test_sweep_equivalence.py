"""The compiled sweep engine must be bit-identical to the scalar oracle.

The sweep tentpole's contract (capture mode in ``fastsim.c`` + one
``fs_bank_run`` per recorded tap stream, driven by
``repro.system.fast_simulator``): after a fast ``run_miss_sweep``,
*everything* — the full study surface (all five schemes' taps, every
size × organization), the hierarchy-side RunSummary, and the machine
image itself (cache/AM sets in LRU order, directory entries, every
TLB/DLB bank's tag state and Mersenne Twister position, counters,
latency histograms) — matches the scalar :class:`StudyAgent` run, which
is retained purely as the differential-testing oracle behind
``fast=False`` / ``REPRO_NO_FAST_SWEEP``.

The matrix also covers the degraded environments (``REPRO_NO_NUMPY``
columns, ``REPRO_NO_NUMBA`` full fallback) and both sides of the
record/replay split: replayed grids (``JobSpec.execute(replay=True)``,
whose captures now also ride the compiled engine) must keep matching
the coupled scalar sweep.
"""

import pytest

from repro import MachineParams, make_workload
from repro.analysis import run_miss_sweep
from repro.core.replay import NO_NUMPY_ENV, get_numpy
from repro.core.schemes import SCHEME_ORDER, TAP_OF_SCHEME
from repro.core.timing_kernels import NO_NUMBA_ENV, get_backend
from repro.core.tlb import Organization
from repro.runner import JobSpec
from repro.runner.summary import RunSummary
from repro.system.fast_simulator import NO_FAST_SWEEP_ENV

pytestmark = pytest.mark.skipif(
    get_backend() is None, reason="compiled backend unavailable"
)

SIZES = (8, 32, 128)
ORGS = (
    Organization.FULLY_ASSOCIATIVE,
    Organization.SET_ASSOCIATIVE,
    Organization.DIRECT_MAPPED,
)


@pytest.fixture(scope="module")
def params():
    return MachineParams.scaled_down(factor=64, nodes=4, page_size=256)


def summary_surface(result) -> dict:
    """Everything RunSummary serializes, minus the engine tags (those
    are provenance, expected to differ between engines)."""
    payload = RunSummary.from_result(result).to_dict()
    payload.pop("backend", None)
    payload.pop("fallback_reason", None)
    return payload


def sets_image(structure):
    """Tag/state sets as ordered item lists — dict equality ignores
    insertion order, but here order IS the LRU position."""
    return [list(s.items()) for s in structure._sets]


def machine_state(machine) -> dict:
    """The post-run machine image, deep enough to catch any state the
    fast engine failed to export (bank LRU order and RNG positions
    included)."""
    engine = machine.engine
    state = {
        "counters": dict(machine.merged_counters().to_dict()),
        "engine_rng": engine._rng.getstate(),
        "nodes": [],
        "directories": [],
    }
    for node in machine.nodes:
        state["nodes"].append(
            {
                "flc": (sets_image(node.flc), node.flc.hits, node.flc.misses),
                "slc": (sets_image(node.slc), node.slc.hits, node.slc.misses),
                "read_hist": (
                    dict(node.read_latency._buckets),
                    node.read_latency.count,
                    node.read_latency.total,
                ),
                "write_hist": (
                    dict(node.write_latency._buckets),
                    node.write_latency.count,
                    node.write_latency.total,
                ),
            }
        )
    for n, am in enumerate(engine.ams):
        state["nodes"][n]["am"] = (sets_image(am), am.hits, am.misses)
    for directory in engine.directories:
        state["directories"].append(
            {
                "lookups": directory.lookups,
                "entries": {
                    block: (entry.owner, frozenset(entry.sharers))
                    for block, entry in directory._entries.items()
                },
            }
        )
    # Every sweep bank, every member buffer: tag lists in residency
    # order, counters, and the exact random.Random state (the victim
    # RNG must land on the same word/position either way).
    agent = machine.agent
    state["banks"] = {
        f"{tap.value}:{node}": {
            "accesses": bank.accesses,
            "buffers": [
                {
                    "tags": [list(ways) for ways in buf._tags],
                    "where": dict(buf._where),
                    "accesses": buf.accesses,
                    "misses": buf.misses,
                    "rng": buf._rng.getstate(),
                }
                for buf in bank._buffer_list
            ],
        }
        for (tap, node), bank in agent._banks.items()
    }
    return state


def paired_sweep(params, workload_factory, **kwargs):
    """One fast and one scalar sweep of the same spec; asserts the
    engines actually differed and returns both results."""
    fast = run_miss_sweep(params, workload_factory(), **kwargs)
    scalar = run_miss_sweep(params, workload_factory(), fast=False, **kwargs)
    assert fast.backend == "compiled" and fast.fallback_reason is None
    assert scalar.backend == "scalar" and scalar.fallback_reason == "fast=False"
    return fast, scalar


class TestBitIdentical:
    @pytest.mark.parametrize("workload", ["radix", "raytrace", "ocean"])
    def test_deep_machine_state(self, params, workload):
        """Summary surface AND full machine image, three stream shapes
        (radix: dense; raytrace: lock-heavy; ocean: barrier-heavy)."""
        fast, scalar = paired_sweep(
            params,
            lambda: make_workload(workload, intensity=0.3),
            sizes=SIZES,
            orgs=ORGS,
            max_refs_per_node=400,
        )
        assert summary_surface(fast) == summary_surface(scalar)
        assert machine_state(fast.machine) == machine_state(scalar.machine)

    def test_every_scheme_every_design_point(self, params):
        """All five paper schemes, every size × organization."""
        fast, scalar = paired_sweep(
            params,
            lambda: make_workload("fft", intensity=0.3),
            sizes=SIZES,
            orgs=ORGS,
            max_refs_per_node=400,
        )
        fast_study = fast.study_results()
        scalar_study = scalar.study_results()
        for scheme in SCHEME_ORDER:
            tap = TAP_OF_SCHEME[scheme]
            for size in SIZES:
                for org in ORGS:
                    assert fast_study.misses(tap, size, org) == scalar_study.misses(
                        tap, size, org
                    ), (scheme.value, size, org.value)
                    assert fast_study.miss_rate(
                        tap, size, org
                    ) == scalar_study.miss_rate(tap, size, org)

    def test_untruncated_streams(self, params):
        """No max_refs bound: stream-exhaustion finish paths line up."""
        fast, scalar = paired_sweep(
            params,
            lambda: make_workload("fmm", intensity=0.2),
            sizes=(8, 64),
            orgs=(Organization.FULLY_ASSOCIATIVE,),
        )
        assert summary_surface(fast) == summary_surface(scalar)
        assert machine_state(fast.machine) == machine_state(scalar.machine)


def make_spec(params, workload="radix"):
    return JobSpec.sweep(
        params,
        workload,
        sizes=SIZES,
        orgs=ORGS,
        max_refs_per_node=400,
        overrides={"intensity": 0.3},
    )


class TestReplayMatrix:
    """replay-on/off × numpy/no-numpy/no-numba against one oracle."""

    @pytest.fixture(scope="class")
    def scalar_oracle(self, params):
        monkeypatch = pytest.MonkeyPatch()
        monkeypatch.setenv(NO_FAST_SWEEP_ENV, "1")
        try:
            return make_spec(params).execute(replay=False)
        finally:
            monkeypatch.undo()

    @pytest.mark.parametrize("replay", [True, False], ids=["replay", "coupled"])
    @pytest.mark.parametrize(
        "env",
        [None, NO_NUMPY_ENV, NO_NUMBA_ENV],
        ids=["numpy", "no-numpy", "no-numba"],
    )
    def test_matrix_cell(self, params, scalar_oracle, replay, env, monkeypatch):
        if env == NO_NUMPY_ENV and get_numpy() is None:
            pytest.skip("numpy unavailable in this environment")
        if env is not None:
            monkeypatch.setenv(env, "1")
        summary = make_spec(params).execute(replay=replay)
        ours = summary.to_dict()
        oracle = scalar_oracle.to_dict()
        for payload in (ours, oracle):
            payload.pop("backend", None)
            payload.pop("fallback_reason", None)
        assert ours == oracle

    def test_replay_summary_backend_stamp(self, params):
        summary = make_spec(params).execute(replay=True)
        assert summary.backend == "compiled+replay"
        coupled = make_spec(params).execute(replay=False)
        assert coupled.backend == "compiled"


class TestFallbacks:
    def test_no_fast_sweep_env(self, params, monkeypatch):
        monkeypatch.setenv(NO_FAST_SWEEP_ENV, "1")
        result = run_miss_sweep(
            params, make_workload("radix", intensity=0.2), max_refs_per_node=200
        )
        assert result.backend == "scalar"
        assert NO_FAST_SWEEP_ENV in result.fallback_reason

    def test_no_fast_timing_env_does_not_gate_sweeps(self, params, monkeypatch):
        """The timing switch must leave sweep runs on the fast path."""
        monkeypatch.setenv("REPRO_NO_FAST_TIMING", "1")
        result = run_miss_sweep(
            params, make_workload("radix", intensity=0.2), max_refs_per_node=200
        )
        assert result.backend == "compiled"

    def test_no_numba_falls_back_scalar(self, params, monkeypatch):
        monkeypatch.setenv(NO_NUMBA_ENV, "1")
        result = run_miss_sweep(
            params, make_workload("radix", intensity=0.2), max_refs_per_node=200
        )
        assert result.backend == "scalar"
        assert "compiled backend unavailable" in result.fallback_reason

    def test_tracer_forces_scalar(self, params, tmp_path):
        from repro.obs import Tracer

        with Tracer(str(tmp_path / "t.jsonl")) as tracer:
            result = run_miss_sweep(
                params,
                make_workload("radix", intensity=0.2),
                max_refs_per_node=200,
                tracer=tracer,
            )
        assert result.backend == "scalar"
        assert result.fallback_reason == "tracing attached"
