"""The compiled timing fast path must be bit-identical to the scalar oracle.

The tentpole contract of the columnar engine (``repro.core.timing_kernels``
+ ``repro.system.fast_simulator``): after a fast run, *everything* — the
RunSummary surface (total time, per-node breakdowns, counters, TLB/DLB
statistics, latency histograms) and the machine object itself (cache/AM
images in LRU order, directory entries, TLB contents, Mersenne Twister
states, the translation accumulator) — matches a run driven by the
scalar engine, which is retained purely as the differential-testing
oracle.  Sync-heavy workloads are the hard part (barriers, lock
contention, truncation mid-critical-section hand control back to Python
sync policy), so RAYTRACE's lock-heavy streams and hand-built
barrier-imbalanced streams are first-class cases here.

The matrix also covers the degraded environments: the columnar
materialization without numpy (``REPRO_NO_NUMPY``) and the full
scalar fallback with the compiled backend disabled (``REPRO_NO_NUMBA``)
must produce the same numbers again.
"""

import pytest

from repro import CustomWorkload, MachineParams, Scheme, SegmentSpec, Simulator, make_workload
from repro.analysis import run_timing
from repro.core.replay import NO_NUMPY_ENV, get_numpy
from repro.core.schemes import SCHEME_ORDER
from repro.core.timing_kernels import NO_NUMBA_ENV, get_backend
from repro.core.tlb import Organization
from repro.runner.summary import RunSummary
from repro.system.machine import Machine
from repro.system.refs import BARRIER, LOCK, READ, UNLOCK, WRITE
from repro.system.taps import TimingAgent

pytestmark = pytest.mark.skipif(
    get_backend() is None, reason="compiled timing backend unavailable"
)


@pytest.fixture(scope="module")
def params():
    return MachineParams.scaled_down(factor=64, nodes=4, page_size=256)


def summary_surface(result) -> dict:
    """Everything RunSummary serializes, minus the engine tags."""
    payload = RunSummary.from_result(result).to_dict()
    payload.pop("backend", None)
    payload.pop("fallback_reason", None)
    return payload


def sets_image(structure):
    """Tag/state sets as ordered item lists — dict equality ignores
    insertion order, but here order IS the LRU position."""
    return [list(s.items()) for s in structure._sets]


def machine_state(machine) -> dict:
    """The post-run machine image, deep enough to catch any state the
    fast engine failed to copy back (LRU order included)."""
    engine = machine.engine
    state = {
        "counters": dict(machine.merged_counters().to_dict()),
        "engine_rng": engine._rng.getstate(),
        "translation_accum": engine._translation_accum,
        "active_demand_block": engine.active_demand_block,
        "nodes": [],
        "directories": [],
    }
    for node in machine.nodes:
        state["nodes"].append(
            {
                "flc": (sets_image(node.flc), node.flc.hits, node.flc.misses),
                "slc": (sets_image(node.slc), node.slc.hits, node.slc.misses),
                "read_hist": (
                    dict(node.read_latency._buckets),
                    node.read_latency.count,
                    node.read_latency.total,
                ),
                "write_hist": (
                    dict(node.write_latency._buckets),
                    node.write_latency.count,
                    node.write_latency.total,
                ),
            }
        )
    for n, am in enumerate(engine.ams):
        state["nodes"][n]["am"] = (sets_image(am), am.hits, am.misses)
    for directory in engine.directories:
        state["directories"].append(
            {
                "lookups": directory.lookups,
                "entries": {
                    block: (entry.owner, frozenset(entry.sharers))
                    for block, entry in directory._entries.items()
                },
            }
        )
    agent = machine.agent
    if isinstance(agent, TimingAgent):
        state["tlbs"] = [
            {
                "tags": [list(ways) for ways in agent.buffer(n)._tags],
                "accesses": agent.buffer(n).accesses,
                "misses": agent.buffer(n).misses,
                "rng": agent.buffer(n)._rng.getstate(),
            }
            for n in range(machine.params.nodes)
        ]
    return state


def paired_run(params, scheme, **kwargs):
    """One fast and one scalar run of the same spec; asserts the
    engines actually differed and returns both results."""
    make = kwargs.pop("workload_factory")
    fast = run_timing(params, scheme, make(), **kwargs)
    scalar = run_timing(params, scheme, make(), fast=False, **kwargs)
    assert fast.backend == "compiled" and fast.fallback_reason is None
    assert scalar.backend == "scalar" and scalar.fallback_reason == "fast=False"
    return fast, scalar


@pytest.mark.parametrize("scheme", SCHEME_ORDER, ids=[s.value for s in SCHEME_ORDER])
class TestAllSchemes:
    def test_raytrace_locks_bit_identical(self, params, scheme):
        """RAYTRACE's task-queue locks: the sync path Python still owns."""
        fast, scalar = paired_run(
            params,
            scheme,
            workload_factory=lambda: make_workload("raytrace", intensity=0.5),
            entries=8,
        )
        assert summary_surface(fast) == summary_surface(scalar)
        assert machine_state(fast.machine) == machine_state(scalar.machine)

    def test_direct_mapped_with_truncation(self, params, scheme):
        """DM structures plus max_refs truncation (epoch edge cases)."""
        fast, scalar = paired_run(
            params,
            scheme,
            workload_factory=lambda: make_workload("radix", intensity=0.3),
            entries=8,
            organization=Organization.DIRECT_MAPPED,
            max_refs_per_node=300,
        )
        assert summary_surface(fast) == summary_surface(scalar)
        assert machine_state(fast.machine) == machine_state(scalar.machine)


def literal_machine(params, streams, pages=32):
    def factory(node, ctx):
        base = ctx.segment("data").base
        for op, value in streams[node]:
            if op in (READ, WRITE, LOCK, UNLOCK):
                yield op, base + value
            else:
                yield op, value

    workload = CustomWorkload(
        [SegmentSpec("data", pages * params.page_size)], factory, name="literal"
    )
    return Machine(params, Scheme.V_COMA, workload)


class TestSyncHeavy:
    def test_barrier_imbalanced_streams(self, params):
        """One node races ahead; two idle at barriers; one finishes
        early (a finished node must satisfy every later barrier)."""
        streams = [
            [(WRITE, i * 32) for i in range(200)] + [(BARRIER, 0)]
            + [(READ, i * 64) for i in range(100)] + [(BARRIER, 1)],
            [(READ, 0), (BARRIER, 0), (READ, 256), (BARRIER, 1)],
            [(BARRIER, 0), (BARRIER, 1)],
            [(WRITE, 512)],  # never reaches either barrier
        ]
        fast = Simulator(literal_machine(params, streams)).run()
        scalar = Simulator(literal_machine(params, streams), fast=False).run()
        assert fast.backend == "compiled"
        assert summary_surface(fast) == summary_surface(scalar)
        assert machine_state(fast.machine) == machine_state(scalar.machine)

    def test_lock_convoy(self, params):
        """All nodes contend for one lock word; FIFO handoff order and
        sync charging must coincide across engines."""
        streams = [
            [(LOCK, 0), (WRITE, 64), (WRITE, 128), (UNLOCK, 0)] * 5
            for _ in range(4)
        ]
        fast = Simulator(literal_machine(params, streams)).run()
        scalar = Simulator(literal_machine(params, streams), fast=False).run()
        assert summary_surface(fast) == summary_surface(scalar)

    def test_truncation_inside_critical_section(self, params):
        """max_refs cuts node 0 off while it holds the lock; the finish
        path must hand the lock to the queued waiter identically."""
        streams = [
            [(LOCK, 0)] + [(WRITE, i * 64) for i in range(50)] + [(UNLOCK, 0)],
            [(LOCK, 0), (WRITE, 64), (UNLOCK, 0)],
            [],
            [],
        ]
        fast = Simulator(literal_machine(params, streams), max_refs_per_node=10).run()
        scalar = Simulator(
            literal_machine(params, streams), max_refs_per_node=10, fast=False
        ).run()
        assert fast.refs_per_node[0] == 10
        assert summary_surface(fast) == summary_surface(scalar)
        assert machine_state(fast.machine) == machine_state(scalar.machine)


class TestBackendMatrix:
    @pytest.fixture(scope="class")
    def scalar_reference(self, params):
        return run_timing(
            params, Scheme.V_COMA,
            make_workload("raytrace", intensity=0.5), 8, fast=False,
        )

    @pytest.mark.skipif(get_numpy() is None, reason="numpy unavailable")
    def test_no_numpy_materialization(self, params, scalar_reference, monkeypatch):
        """array.array columns feed the engine identically to numpy's."""
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        fast = run_timing(
            params, Scheme.V_COMA,
            make_workload("raytrace", intensity=0.5), 8,
        )
        assert fast.backend == "compiled"
        assert summary_surface(fast) == summary_surface(scalar_reference)

    def test_no_numba_falls_back_scalar(self, params, scalar_reference, monkeypatch):
        """REPRO_NO_NUMBA disables the backend; results don't change."""
        monkeypatch.setenv(NO_NUMBA_ENV, "1")
        result = run_timing(
            params, Scheme.V_COMA,
            make_workload("raytrace", intensity=0.5), 8,
        )
        assert result.backend == "scalar"
        assert "compiled backend unavailable" in result.fallback_reason
        assert summary_surface(result) == summary_surface(scalar_reference)

    def test_no_fast_timing_env(self, params, monkeypatch):
        """The CLI escape hatch forces the oracle."""
        monkeypatch.setenv("REPRO_NO_FAST_TIMING", "1")
        result = run_timing(
            params, Scheme.V_COMA, make_workload("radix", intensity=0.2), 8,
        )
        assert result.backend == "scalar"
        assert "REPRO_NO_FAST_TIMING" in result.fallback_reason


class TestBackendReporting:
    def test_summary_carries_backend(self, params):
        result = run_timing(
            params, Scheme.V_COMA, make_workload("radix", intensity=0.2), 8,
        )
        summary = RunSummary.from_result(result)
        assert summary.backend == "compiled"
        assert RunSummary.from_dict(summary.to_dict()).backend == "compiled"

    def test_tracer_forces_scalar(self, params, tmp_path):
        from repro.obs import Tracer

        with Tracer(str(tmp_path / "t.jsonl")) as tracer:
            result = run_timing(
                params, Scheme.V_COMA,
                make_workload("radix", intensity=0.2), 8, tracer=tracer,
            )
        assert result.backend == "scalar"
        assert result.fallback_reason == "tracing attached"
