"""Golden trace-profile suite: cost attribution from a committed trace.

The repo commits two recorded RADIX traces (V-COMA and the L2-TLB
timing point, gzipped JSONL) for the same seeded 4-node configuration
as the golden metrics snapshots.  The profiler must derive the paper's
Table-4-shaped overhead breakdown from those traces alone and
reconcile it **exactly** — assert-equal, not approximately — against
the committed ``tests/golden/metrics_*.json`` registries for the same
runs.  A live traced run must also reproduce the committed trace
record-for-record, so the goldens double as determinism and
trace-format regressions.

To refresh after an intentional behavior change::

    PYTHONPATH=src python -m pytest tests/integration/test_trace_profile.py \
        --update-golden
"""

import json
from pathlib import Path

import pytest

from repro import MachineParams, Scheme
from repro.analysis import run_timing
from repro.obs import (
    MetricsRegistry,
    ReconciliationError,
    Tracer,
    attribute_costs,
    profile_trace,
    read_trace,
    validate_trace,
)
from repro.workloads import make_workload

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
SCHEMES = (Scheme.V_COMA, Scheme.L2_TLB)
WORKLOAD = "radix"
INTENSITY = 0.2
ENTRIES = 8
MAX_REFS = 400


def _slug(scheme: Scheme) -> str:
    return scheme.value.lower().replace("-", "_")


def trace_path(scheme: Scheme) -> Path:
    return GOLDEN_DIR / f"trace_{_slug(scheme)}_{WORKLOAD}.jsonl.gz"


def metrics_path(scheme: Scheme) -> Path:
    return GOLDEN_DIR / f"metrics_{_slug(scheme)}_{WORKLOAD}.json"


PROFILE_PATH = GOLDEN_DIR / f"profile_{_slug(Scheme.V_COMA)}_{WORKLOAD}.json"


@pytest.fixture(scope="module")
def params():
    return MachineParams.scaled_down(
        factor=64, nodes=4, page_size=256
    ).replace(seed=1998)


def record_trace(params, scheme: Scheme, path) -> None:
    workload = make_workload(WORKLOAD, intensity=INTENSITY)
    with Tracer(str(path)) as tracer:
        run_timing(
            params, scheme, workload, ENTRIES,
            max_refs_per_node=MAX_REFS, tracer=tracer,
        )


@pytest.fixture(scope="module", params=SCHEMES, ids=[s.value for s in SCHEMES])
def golden_trace(request, params):
    scheme = request.param
    path = trace_path(scheme)
    if request.config.getoption("--update-golden"):
        path.parent.mkdir(parents=True, exist_ok=True)
        record_trace(params, scheme, path)
    assert path.exists(), (
        f"missing golden trace {path}; run with --update-golden to create it"
    )
    return scheme, read_trace(str(path))


def test_committed_trace_validates(golden_trace):
    _, records = golden_trace
    stats = validate_trace(records)
    assert stats["roots"] == 1
    assert stats["spans"] > 0 and stats["events"] > 0


def test_committed_trace_matches_live_run(golden_trace, params, tmp_path):
    """A fresh seeded run reproduces the committed trace record-for-record."""
    scheme, records = golden_trace
    live_path = tmp_path / "live.jsonl"
    record_trace(params, scheme, live_path)
    assert read_trace(str(live_path)) == records


def test_attribution_reconciles_exactly_with_golden_metrics(golden_trace):
    """The acceptance criterion: every trace-derived category equals the
    corresponding registry value, asserted (strict), for both the
    V-COMA DLB point and the L2-TLB timing point."""
    scheme, records = golden_trace
    registry = MetricsRegistry.from_dict(
        json.loads(metrics_path(scheme).read_text())
    )
    attribution = attribute_costs(records)
    checks = attribution.reconcile(registry, strict=True)
    assert len(checks) >= 12
    assert all(row["ok"] for row in checks)
    # The breakdown is non-trivial: every category landed cycles.
    for category in ("translation", "local_memory", "remote_memory"):
        assert attribution.categories[category] > 0


def test_attribution_uses_scheme_vocabulary(golden_trace):
    scheme, records = golden_trace
    attribution = attribute_costs(records)
    expected = "dlb" if scheme is Scheme.V_COMA else "tlb"
    assert attribution.translation_kind == expected
    assert attribution.counts["translation_fills"] > 0


def test_reconcile_flags_a_perturbed_registry(golden_trace):
    """Shift one counter by one cycle: strict reconcile must raise and
    name the failing identity."""
    scheme, records = golden_trace
    registry = MetricsRegistry.from_dict(
        json.loads(metrics_path(scheme).read_text())
    )
    registry.counter("repro_events_total").inc(1, event="network_cycles")
    with pytest.raises(ReconciliationError, match="network_cycles"):
        attribute_costs(records).reconcile(registry, strict=True)
    rows = attribute_costs(records).reconcile(registry, strict=False)
    bad = [row for row in rows if not row["ok"]]
    assert len(bad) == 1 and "network_cycles" in bad[0]["check"]


def test_profile_snapshot_matches_golden(golden_trace, update_golden):
    scheme, records = golden_trace
    if scheme is not Scheme.V_COMA:
        pytest.skip("profile snapshot is committed for the V-COMA trace")
    snapshot = {
        "profile": profile_trace(records).to_dict(),
        "attribution": attribute_costs(records).to_dict(),
    }
    rendered = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    if update_golden:
        PROFILE_PATH.write_text(rendered)
        pytest.skip(f"rewrote {PROFILE_PATH.name}")
    assert PROFILE_PATH.exists(), (
        f"missing golden snapshot {PROFILE_PATH}; "
        f"run with --update-golden to create it"
    )
    assert rendered == PROFILE_PATH.read_text()


def test_profile_tree_accounts_for_every_span(golden_trace):
    """The profile's span count equals the trace's, and the root's
    inclusive time covers the whole run."""
    _, records = golden_trace
    profile = profile_trace(records)
    spans = [r for r in records if r.get("kind") == "span"]
    assert profile.span_count == len(spans)
    (root,) = [r for r in spans if r["parent"] is None]
    (root_node,) = [n for n in profile.roots if n.name == "run"]
    assert root_node.inclusive == root["t1"] - root["t0"]
    # Exclusive times telescope: summing them over the whole tree
    # recovers exactly the roots' inclusive totals.
    def total_exclusive(node):
        return node.exclusive + sum(
            total_exclusive(child) for child in node.children.values()
        )

    assert sum(total_exclusive(n) for n in profile.roots) == sum(
        n.inclusive for n in profile.roots
    )
