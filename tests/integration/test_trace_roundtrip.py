"""Trace round-trip: emit JSONL, parse it back, audit the span tree.

A seeded 4-node traced run is written to disk, re-read with
:func:`repro.obs.read_trace`, and checked against the frozen schema
(:func:`repro.obs.validate_trace`): every span's parent exists, every
latency is non-negative, and the event vocabulary matches the scheme
(DLB events only under V-COMA, TLB events elsewhere).  The trace is
then reconciled *exactly* against the merged simulator counters — the
two observability surfaces must never disagree — and a traced run must
be indistinguishable from an untraced one in every simulated quantity.
"""

import pytest

from repro import MachineParams, Scheme
from repro.analysis import run_timing
from repro.obs import Tracer, read_trace, validate_trace
from repro.obs.schema import TraceSchemaError, scheme_vocabulary
from repro.obs.trace import span_tree
from repro.workloads import make_workload

MAX_REFS = 400
ENTRIES = 8


@pytest.fixture(scope="module")
def params():
    return MachineParams.scaled_down(
        factor=64, nodes=4, page_size=256
    ).replace(seed=1998)


def traced_run(params, scheme, path):
    workload = make_workload("radix", intensity=0.2)
    with Tracer(str(path)) as tracer:
        result = run_timing(
            params, scheme, workload, ENTRIES,
            max_refs_per_node=MAX_REFS, tracer=tracer,
        )
        counters = result.counters.to_dict()
        total_time = result.total_time
    return read_trace(str(path)), counters, total_time


@pytest.fixture(scope="module")
def vcoma(params, tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "vcoma.jsonl"
    return traced_run(params, Scheme.V_COMA, path)


def test_trace_validates_against_schema(vcoma):
    records, _, _ = vcoma
    stats = validate_trace(records)
    assert stats["roots"] == 1
    assert stats["spans"] > 0 and stats["events"] > 0


def test_meta_header_first(vcoma, params):
    records, _, _ = vcoma
    meta = records[0]
    assert meta["kind"] == "meta"
    assert meta["scheme"] == Scheme.V_COMA.value
    assert meta["nodes"] == params.nodes
    assert meta["workload"] == "radix"


def test_span_tree_integrity(vcoma):
    records, _, total_time = vcoma
    spans = [r for r in records if r.get("kind") == "span"]
    ids = {s["id"] for s in spans}
    roots = [s for s in spans if s["parent"] is None]
    assert len(roots) == 1 and roots[0]["name"] == "run"
    for span in spans:
        assert span["parent"] is None or span["parent"] in ids
        assert span["t1"] >= span["t0"] >= 0
    # The root "run" span covers the whole simulation.
    assert roots[0]["t0"] == 0
    assert roots[0]["t1"] == total_time
    # Children nest inside the root's interval and the tree index
    # reaches every non-root span.
    children = span_tree(records)
    reachable = set()
    frontier = [roots[0]["id"]]
    while frontier:
        node = frontier.pop()
        for child in children.get(node, ()):
            reachable.add(child["id"])
            frontier.append(child["id"])
    assert reachable == ids - {roots[0]["id"]}


def test_event_vocabulary_is_scheme_bound(vcoma):
    records, _, _ = vcoma
    names = {r["name"] for r in records if r.get("kind") == "event"}
    vocabulary = scheme_vocabulary(Scheme.V_COMA)
    assert names <= vocabulary["events"]
    assert "dlb_hit" in names and "dlb_fill" in names
    assert not names & {"tlb_hit", "tlb_fill"}


def test_trace_reconciles_exactly_with_counters(vcoma):
    records, counters, _ = vcoma
    hits = sum(1 for r in records if r.get("name") == "dlb_hit")
    fills = sum(1 for r in records if r.get("name") == "dlb_fill")
    assert hits + fills == counters["dlb_accesses"]
    assert fills == counters["dlb_misses"]
    fetches = sum(1 for r in records if r.get("name") == "protocol.fetch")
    upgrades = sum(1 for r in records if r.get("name") == "protocol.upgrade")
    assert fetches + upgrades > 0
    invalidations = sum(
        1 for r in records if r.get("name") == "protocol.invalidate"
    )
    assert invalidations == counters["invalidations"]


def test_tlb_scheme_uses_tlb_vocabulary(params, tmp_path):
    records, counters, _ = traced_run(
        params, Scheme.L0_TLB, tmp_path / "l0.jsonl"
    )
    validate_trace(records)
    names = {r["name"] for r in records if r.get("kind") == "event"}
    assert "tlb_hit" in names or "tlb_fill" in names
    assert not names & {"dlb_hit", "dlb_fill"}
    hits = sum(1 for r in records if r.get("name") == "tlb_hit")
    fills = sum(1 for r in records if r.get("name") == "tlb_fill")
    assert hits + fills == counters["tlb_accesses"]
    assert fills == counters["tlb_misses"]


def test_tracing_does_not_perturb_the_simulation(params, vcoma, tmp_path):
    _, traced_counters, traced_time = vcoma
    untraced = run_timing(
        params, Scheme.V_COMA, make_workload("radix", intensity=0.2),
        ENTRIES, max_refs_per_node=MAX_REFS,
    )
    assert untraced.total_time == traced_time
    assert untraced.counters.to_dict() == traced_counters


def test_schema_rejects_foreign_vocabulary(vcoma):
    records, _, _ = vcoma
    bad = list(records) + [
        {"kind": "event", "name": "tlb_hit", "t": 1, "span": None, "node": 0}
    ]
    with pytest.raises(TraceSchemaError):
        validate_trace(bad)


def test_truncated_trace_is_flagged(params, tmp_path):
    path = tmp_path / "trunc.jsonl"
    tracer = Tracer(str(path))
    tracer.set_meta(scheme=Scheme.V_COMA.value, nodes=1)
    tracer.begin("run", 0)
    tracer.begin("ref", 5, node=0)
    tracer.close()  # two spans still open: closed as truncated
    records = read_trace(str(path))
    truncated = [r for r in records if r.get("truncated")]
    assert len(truncated) == 2
    validate_trace(records)
