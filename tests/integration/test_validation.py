"""The self-validation harness."""

import pytest

from repro import MachineParams
from repro.analysis import ValidationReport, validate_reproduction


@pytest.fixture(scope="module")
def report():
    # 4 nodes keeps this module fast; claims must still hold.
    params = MachineParams.scaled_down(factor=32, nodes=4, page_size=256)
    return validate_reproduction(params, quick=True)


class TestValidateReproduction:
    def test_all_claims_evaluated(self, report):
        names = {c.name for c in report.claims}
        assert names == {
            "filtering",
            "writeback-effect",
            "sharing",
            "equivalent-size",
            "overhead",
            "padding",
            "pressure",
            "padding-pressure",
        }

    def test_core_claims_hold_at_small_scale(self, report):
        """The strongest claims must hold even on a 4-node machine;
        node-count-sensitive ones (sharing, padding) are allowed to be
        weaker here and are asserted at 8 nodes by the shape tests."""
        by_name = {c.name: c for c in report.claims}
        for name in ("filtering", "overhead", "pressure", "padding-pressure"):
            assert by_name[name].passed, by_name[name].detail

    def test_score_format(self, report):
        good, total = report.score.split("/")
        assert int(total) == len(report.claims)
        assert 0 <= int(good) <= int(total)

    def test_render_lists_every_claim(self, report):
        text = report.render()
        for claim in report.claims:
            assert claim.name in text
        assert "claims hold" in text

    def test_passed_consistent_with_claims(self, report):
        assert report.passed == all(c.passed for c in report.claims)

    def test_subset_of_workloads(self):
        params = MachineParams.scaled_down(factor=64, nodes=4, page_size=256)
        small = validate_reproduction(
            params, quick=True, workload_names=["ocean"]
        )
        # No radix -> no equivalent-size claim.
        assert "equivalent-size" not in {c.name for c in small.claims}
