"""Statistical character of each SPLASH-2-shaped generator.

The substitution argument in DESIGN.md §2 rests on the generators
matching their models' page-granularity locality and sharing structure;
these tests pin that character using the traffic profiler and direct
stream inspection.
"""

import pytest

from repro import Machine, MachineParams, Scheme, make_workload
from repro.analysis import profile_workload
from repro.system.refs import LOCK, READ, WRITE

PARAMS = MachineParams.scaled_down(factor=8, nodes=8, page_size=512)


def profile(name, **cfg):
    cfg.setdefault("intensity", 0.25)
    return profile_workload(PARAMS, make_workload(name, **cfg))


class TestRadix:
    def test_output_written_input_read(self):
        p = profile("radix")
        assert p.segments["keys_in"].write_fraction == 0.0
        assert p.segments["keys_out"].write_fraction == 1.0

    def test_output_array_fully_swept(self):
        """Every output page is written during a pass (the permutation
        covers the whole array).  Needs the full key count — reduced
        intensity drops keys and with them whole buckets."""
        p = profile("radix", intensity=1.0)
        out = p.segments["keys_out"]
        total_pages = out.size // PARAMS.page_size
        assert out.distinct_pages >= total_pages * 0.9

    def test_write_heavy_overall(self):
        assert profile("radix").write_fraction > 0.35


class TestFFT:
    def test_both_matrices_touched(self):
        p = profile("fft")
        assert p.segments["matrix_a"].references > 0
        assert p.segments["matrix_b"].references > 0

    def test_column_slices_share_pages(self):
        """Several nodes read the same source page during the transpose
        (the sharing effect's precondition)."""
        workload = make_workload("fft", intensity=0.25)
        machine = Machine(PARAMS, Scheme.V_COMA, workload)
        a = machine.space["matrix_a"]
        page = PARAMS.page_size

        def read_pages(node):
            return {
                v // page
                for op, v in machine.node_stream(node)
                if op == READ and a.contains(v)
            }

        shared = read_pages(0) & read_pages(1)
        assert shared


class TestOcean:
    def test_band_partitioning_with_boundaries(self):
        """Node 1 reads mostly its own band plus thin boundary overlap
        with neighbours."""
        workload = make_workload("ocean", intensity=0.25)
        machine = Machine(PARAMS, Scheme.V_COMA, workload)
        grid = machine.space["grid_a"]
        page = PARAMS.page_size

        def touched(node):
            return {
                v // page
                for op, v in machine.node_stream(node)
                if grid.contains(v)
            }

        own = touched(1)
        neighbour = touched(2)
        overlap = own & neighbour
        assert overlap  # boundary rows shared
        assert len(overlap) < len(own) * 0.3  # but only a thin band

    def test_read_write_balance(self):
        frac = profile("ocean").write_fraction
        assert 0.2 < frac < 0.5


class TestTreeCodes:
    @pytest.mark.parametrize("name", ["fmm", "barnes"])
    def test_tree_read_mostly(self, name):
        p = profile(name, intensity=0.5)
        assert p.segments["tree"].write_fraction < 0.3

    @pytest.mark.parametrize("name", ["fmm", "barnes"])
    def test_tree_shared_across_nodes(self, name):
        workload = make_workload(name, intensity=0.3)
        machine = Machine(PARAMS, Scheme.V_COMA, workload)
        tree = machine.space["tree"]
        page = PARAMS.page_size

        def tree_pages(node):
            return {
                v // page
                for op, v in machine.node_stream(node)
                if op == READ and tree.contains(v)
            }

        assert tree_pages(0) & tree_pages(5)

    def test_barnes_build_uses_locks(self):
        p = profile("barnes", intensity=0.5)
        assert p.segments["locks"].lock_ops > 0

    def test_particles_partitioned(self):
        """FMM nodes update disjoint particle regions."""
        workload = make_workload("fmm", intensity=0.3)
        machine = Machine(PARAMS, Scheme.V_COMA, workload)
        particles = machine.space["particles"]

        def written(node):
            return {
                v
                for op, v in machine.node_stream(node)
                if op == WRITE and particles.contains(v)
            }

        assert not (written(0) & written(1))


class TestRaytrace:
    def test_scene_read_only(self):
        p = profile("raytrace", intensity=1.0)
        assert p.segments["scene"].write_fraction == 0.0

    def test_stacks_private(self):
        workload = make_workload("raytrace", intensity=1.0)
        machine = Machine(PARAMS, Scheme.V_COMA, workload)
        own = machine.space["stack1_g0_e0"]
        for node in (0, 2, 5):
            touches = [
                v for op, v in machine.node_stream(node) if own.contains(v)
            ]
            assert not touches  # only node 1 touches its own stack

    def test_task_queue_locked(self):
        p = profile("raytrace", intensity=1.0)
        assert p.segments["task_queue"].lock_ops > 0
