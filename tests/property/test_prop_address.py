"""Property tests: address field decomposition invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MachineParams
from repro.common.address import AddressLayout

# A few representative geometries (paper baseline + scaled shapes).
LAYOUTS = [
    AddressLayout.from_params(MachineParams.paper_baseline()),
    AddressLayout.from_params(MachineParams.scaled_down(factor=64, nodes=4, page_size=256)),
    AddressLayout.from_params(MachineParams.scaled_down(factor=8, nodes=8, page_size=512)),
    AddressLayout.from_params(MachineParams.scaled_down(factor=256, nodes=2, page_size=256)),
]

layouts = st.sampled_from(LAYOUTS)
addrs = st.integers(min_value=0, max_value=(1 << 44) - 1)


@given(layout=layouts, addr=addrs)
@settings(max_examples=300, deadline=None)
def test_vpn_offset_reconstruct(layout, addr):
    assert layout.make_address(layout.vpn(addr), layout.page_offset(addr)) == addr


@given(layout=layouts, addr=addrs)
@settings(max_examples=300, deadline=None)
def test_field_ranges(layout, addr):
    assert 0 <= layout.home_node(addr) < layout.nodes
    assert 0 <= layout.am_set_index(addr) < layout.am_sets
    assert 0 <= layout.global_page_set(addr) < layout.global_page_sets
    assert 0 <= layout.directory_entry_index(addr) < layout.blocks_per_page


@given(layout=layouts, addr=addrs)
@settings(max_examples=300, deadline=None)
def test_block_base_idempotent_and_within_page(layout, addr):
    base = layout.block_base(addr)
    assert layout.block_base(base) == base
    assert base <= addr < base + (1 << layout.block_bits)
    # A block never straddles pages.
    assert layout.vpn(base) == layout.vpn(base + (1 << layout.block_bits) - 1)


@given(layout=layouts, addr=addrs)
@settings(max_examples=300, deadline=None)
def test_same_page_same_fields(layout, addr):
    base = layout.page_base(addr)
    assert layout.home_node(base) == layout.home_node(addr)
    assert layout.global_page_set(base) == layout.global_page_set(addr)


@given(layout=layouts, vpn=st.integers(min_value=0, max_value=1 << 30))
@settings(max_examples=300, deadline=None)
def test_home_and_color_consistent_between_vpn_and_addr_forms(layout, vpn):
    addr = layout.make_address(vpn)
    assert layout.home_node(addr) == layout.home_node_of_vpn(vpn)
    assert layout.global_page_set(addr) == layout.global_page_set_of_vpn(vpn)


@given(layout=layouts, vpn=st.integers(min_value=0, max_value=1 << 20))
@settings(max_examples=200, deadline=None)
def test_page_occupies_distinct_consecutive_sets(layout, vpn):
    sets = list(layout.page_am_sets(vpn))
    assert len(sets) == layout.blocks_per_page
    assert len(set(s % layout.am_sets for s in sets)) == len(sets)


@given(layout=layouts, addr=addrs)
@settings(max_examples=200, deadline=None)
def test_am_set_from_block_number(layout, addr):
    assert layout.am_set_index(addr) == layout.block_number(addr) % layout.am_sets
