"""Property tests: Cache against an explicit LRU reference model."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CLEAN_SHARED, DIRTY, Cache

BLOCK = 32
SETS = 4
ASSOC = 2
SIZE = BLOCK * SETS * ASSOC

addresses = st.integers(min_value=0, max_value=SIZE * 8)
streams = st.lists(
    st.tuples(st.sampled_from(["lookup", "insert", "insert_dirty", "invalidate"]), addresses),
    max_size=200,
)


class ModelCache:
    """Dead-simple LRU model: one OrderedDict per set."""

    def __init__(self):
        self.sets = [OrderedDict() for _ in range(SETS)]

    @staticmethod
    def block(addr):
        return addr & ~(BLOCK - 1)

    @staticmethod
    def index(addr):
        return (addr // BLOCK) % SETS

    def lookup(self, addr):
        s, b = self.sets[self.index(addr)], self.block(addr)
        if b in s:
            s.move_to_end(b)
            return True
        return False

    def insert(self, addr, state):
        s, b = self.sets[self.index(addr)], self.block(addr)
        victim = None
        if b in s:
            s[b] = max(s[b], state)
            s.move_to_end(b)
            return None
        if len(s) >= ASSOC:
            victim = s.popitem(last=False)
        s[b] = state
        return victim

    def invalidate(self, addr):
        self.sets[self.index(addr)].pop(self.block(addr), None)


@given(stream=streams)
@settings(max_examples=150, deadline=None)
def test_cache_matches_lru_model(stream):
    cache = Cache(SIZE, BLOCK, ASSOC)
    model = ModelCache()
    for op, addr in stream:
        if op == "lookup":
            assert cache.lookup(addr) == model.lookup(addr)
        elif op == "insert":
            got = cache.insert(addr, CLEAN_SHARED)
            want = model.insert(addr, CLEAN_SHARED)
            assert (got is None) == (want is None)
            if got is not None:
                assert (got.block, got.state) == want
        elif op == "insert_dirty":
            got = cache.insert(addr, DIRTY)
            want = model.insert(addr, DIRTY)
            assert (got is None) == (want is None)
            if got is not None:
                assert (got.block, got.state) == want
        else:
            cache.invalidate(addr)
            model.invalidate(addr)
        # Structural agreement after every step.
        assert sorted(cache.resident_blocks()) == sorted(
            b for s in model.sets for b in s
        )


@given(stream=st.lists(addresses, max_size=150))
@settings(max_examples=100, deadline=None)
def test_occupancy_bounded(stream):
    cache = Cache(SIZE, BLOCK, ASSOC)
    for addr in stream:
        cache.insert(addr)
        assert cache.occupancy() <= SETS * ASSOC


@given(stream=st.lists(addresses, min_size=1, max_size=150))
@settings(max_examples=100, deadline=None)
def test_inserted_block_resident_until_capacity_evicts(stream):
    cache = Cache(SIZE, BLOCK, ASSOC)
    for addr in stream:
        cache.insert(addr)
        assert cache.contains(addr)


@given(stream=st.lists(addresses, max_size=100))
@settings(max_examples=50, deadline=None)
def test_flush_empties_and_reports_exactly_the_dirty_blocks(stream):
    cache = Cache(SIZE, BLOCK, ASSOC)
    model = ModelCache()
    for i, addr in enumerate(stream):
        state = DIRTY if i % 3 == 0 else CLEAN_SHARED
        cache.insert(addr, state)
        model.insert(addr, state)
    expected_dirty = {
        block for s in model.sets for block, st_ in s.items() if st_ == DIRTY
    }
    flushed = {e.block for e in cache.flush()}
    assert flushed == expected_dirty
    assert cache.occupancy() == 0
