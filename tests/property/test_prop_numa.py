"""Property tests: the CC-NUMA MSI engine under random operations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CustomWorkload, MachineParams, SegmentSpec, Simulator
from repro.numa import NumaMachine, SHARED_TLB
from repro.system.refs import READ, WRITE

PARAMS = MachineParams.scaled_down(factor=256, nodes=2, page_size=256)
PAGES = 12

mem_ops = st.tuples(
    st.sampled_from([READ, WRITE]),
    st.integers(min_value=0, max_value=PAGES * PARAMS.page_size - 1),
)
node_streams = st.lists(
    st.lists(mem_ops, max_size=40),
    min_size=PARAMS.nodes,
    max_size=PARAMS.nodes,
)


def build(streams):
    def factory(node, ctx):
        base = ctx.segment("data").base
        for op, offset in streams[node]:
            yield op, base + offset

    workload = CustomWorkload(
        [SegmentSpec("data", PAGES * PARAMS.page_size)], factory, name="nprop"
    )
    return NumaMachine(PARAMS, SHARED_TLB, workload)


@given(streams=node_streams)
@settings(max_examples=60, deadline=None)
def test_directory_consistency_and_conservation(streams):
    machine = build(streams)
    result = Simulator(machine).run()
    machine.engine.check_invariants()
    for breakdown in result.breakdowns:
        assert breakdown.total == result.total_time


@given(streams=node_streams)
@settings(max_examples=60, deadline=None)
def test_last_writer_owns_exclusively(streams):
    machine = build(streams)
    Simulator(machine).run()
    # Replay the streams logically: the last writer of each coherence
    # block (if nobody read it afterwards) must be the directory owner.
    layout = machine.layout
    base = machine.space["data"].base
    last_event = {}
    for node, stream in enumerate(streams):
        # Streams interleave in simulation, but within one node order
        # holds; with 2 nodes we only assert blocks touched by a single
        # node (no cross-node race on them).
        for op, offset in stream:
            block = layout.block_base(base + offset)
            last_event.setdefault(block, set()).add(node)
    for block, nodes in last_event.items():
        if len(nodes) != 1:
            continue
        (node,) = nodes
        wrote = any(
            op == WRITE and layout.block_base(base + off) == block
            for op, off in streams[node]
        )
        entry = machine.engine._entries.get(block)
        if wrote:
            assert entry is not None and entry.owner == node
        elif entry is not None:
            assert entry.owner is None


@given(streams=node_streams)
@settings(max_examples=40, deadline=None)
def test_deterministic(streams):
    a = Simulator(build(streams)).run()
    b = Simulator(build(streams)).run()
    assert a.total_time == b.total_time
    assert a.counters.to_dict() == b.counters.to_dict()


@given(streams=node_streams)
@settings(max_examples=40, deadline=None)
def test_numa_never_faster_than_local_bound(streams):
    """Every memory-touching run costs at least its AM-latency floor on
    cold accesses: sanity for the latency accounting."""
    machine = build(streams)
    result = Simulator(machine).run()
    cold_blocks = len(
        {
            machine.layout.block_base(machine.space["data"].base + off)
            for stream in streams
            for _, off in stream
        }
    )
    if cold_blocks:
        floor = machine.params.am_hit_latency  # at least one cold access
        assert result.total_time >= floor
