"""Property tests: metrics-registry merge laws and histogram percentiles.

The registry's merge is the backbone of every cross-process aggregation
(worker shards, golden snapshots), so its algebra has to be exact:
counter and histogram merge form a commutative monoid, gauge merge (max)
is additionally idempotent, and a merged histogram is indistinguishable
from one that observed every sample directly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import Counters, LatencyHistogram
from repro.obs import MetricsRegistry

labels = st.dictionaries(
    st.sampled_from(["node", "scheme", "op"]),
    st.sampled_from(["0", "1", "read", "write", "V-COMA"]),
    max_size=2,
)
counter_events = st.lists(
    st.tuples(st.sampled_from(["hits", "misses", "refs"]), labels,
              st.integers(min_value=0, max_value=1000)),
    max_size=30,
)
samples = st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=200)
fractions = st.lists(
    st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
    min_size=2, max_size=10,
)


def registry_from(events):
    registry = MetricsRegistry()
    metric = registry.counter("repro_test_total")
    for name, lbls, amount in events:
        metric.inc(amount, event=name, **lbls)
    return registry


@given(a=counter_events, b=counter_events)
@settings(max_examples=100, deadline=None)
def test_counter_merge_commutative(a, b):
    ra, rb = registry_from(a), registry_from(b)
    assert ra.merge(rb).to_dict() == rb.merge(ra).to_dict()


@given(a=counter_events, b=counter_events, c=counter_events)
@settings(max_examples=100, deadline=None)
def test_counter_merge_associative(a, b, c):
    ra, rb, rc = registry_from(a), registry_from(b), registry_from(c)
    assert ra.merge(rb).merge(rc).to_dict() == ra.merge(rb.merge(rc)).to_dict()


@given(a=counter_events, b=counter_events)
@settings(max_examples=100, deadline=None)
def test_merge_leaves_operands_untouched(a, b):
    ra, rb = registry_from(a), registry_from(b)
    before_a, before_b = ra.to_dict(), rb.to_dict()
    ra.merge(rb)
    assert ra.to_dict() == before_a
    assert rb.to_dict() == before_b


def histogram_registry(values, **lbls):
    registry = MetricsRegistry()
    metric = registry.histogram("repro_test_latency")
    for value in values:
        metric.observe(value, **lbls)
    return registry


@given(a=samples, b=samples)
@settings(max_examples=100, deadline=None)
def test_histogram_merge_commutative(a, b):
    ra, rb = histogram_registry(a), histogram_registry(b)
    assert ra.merge(rb).to_dict() == rb.merge(ra).to_dict()


@given(a=samples, b=samples, c=samples)
@settings(max_examples=60, deadline=None)
def test_histogram_merge_associative(a, b, c):
    ra, rb, rc = (histogram_registry(v) for v in (a, b, c))
    assert ra.merge(rb).merge(rc).to_dict() == ra.merge(rb.merge(rc)).to_dict()


@given(a=samples, b=samples)
@settings(max_examples=100, deadline=None)
def test_merged_histogram_equals_union_of_samples(a, b):
    merged = histogram_registry(a).merge(histogram_registry(b))
    union = histogram_registry(a + b)
    assert merged.to_dict() == union.to_dict()
    state = merged.get("repro_test_latency").state()
    assert state.count == len(a) + len(b)
    assert state.total == sum(a) + sum(b)


@given(a=samples, b=samples)
@settings(max_examples=100, deadline=None)
def test_latency_histogram_merge_totals(a, b):
    ha, hb = LatencyHistogram(), LatencyHistogram()
    for value in a:
        ha.record(value)
    for value in b:
        hb.record(value)
    merged = ha.merge(hb)
    assert merged.count == len(a) + len(b)
    assert merged.total == sum(a) + sum(b)


@given(values=samples, fracs=fractions)
@settings(max_examples=100, deadline=None)
def test_percentile_monotone_in_fraction(values, fracs):
    histogram = LatencyHistogram()
    for value in values:
        histogram.record(value)
    ordered = sorted(fracs)
    points = [histogram.percentile(f) for f in ordered]
    assert points == sorted(points)


def test_percentile_of_empty_histogram_is_zero():
    # Regression: used to fall through the bucket walk and return the
    # top bucket's upper bound for an empty histogram.
    histogram = LatencyHistogram()
    assert histogram.percentile(0.5) == 0
    assert histogram.percentile(1.0) == 0


@given(values=samples)
@settings(max_examples=100, deadline=None)
def test_percentile_bounds_contain_samples(values):
    histogram = LatencyHistogram()
    for value in values:
        histogram.record(value)
    if not values:
        return
    # p100 is an upper bound of the max sample's bucket; p-epsilon is at
    # least the smallest bucket's bound, never negative.
    assert histogram.percentile(1.0) >= max(values)
    assert histogram.percentile(0.001) >= 0


@given(events=counter_events)
@settings(max_examples=60, deadline=None)
def test_counters_to_metrics_preserves_totals(events):
    counters = Counters()
    for name, _, amount in events:
        counters.add(name, amount)
    registry = MetricsRegistry()
    counters.to_metrics(registry)
    metric = registry.get("repro_events_total")
    for name in {name for name, _, _ in events}:
        assert metric.value(event=name) == counters[name]
