"""Property tests: random transaction sequences preserve the COMA-F
coherence invariants (single master, directory/AM agreement)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MachineParams
from repro.common.address import AddressLayout
from repro.common.errors import CapacityError
from repro.coma.protocol import ProtocolEngine
from repro.coma.states import AMState
from repro.interconnect.crossbar import Crossbar

PARAMS = MachineParams.scaled_down(factor=256, nodes=2, page_size=256)
LAYOUT = AddressLayout.from_params(PARAMS)
BLOCK = 1 << LAYOUT.block_bits

# A pool of blocks across several pages/colors (kept well under the
# global-set capacity so injection always finds room).
PAGES = list(range(6))
BLOCK_POOL = [
    (vpn << LAYOUT.page_bits) + b * BLOCK
    for vpn in PAGES
    for b in range(LAYOUT.blocks_per_page)
]

ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=PARAMS.nodes - 1),
        st.sampled_from(BLOCK_POOL),
        st.booleans(),  # is_write
    ),
    max_size=120,
)


def fresh_engine():
    engine = ProtocolEngine(PARAMS, LAYOUT, Crossbar(PARAMS))
    for block in BLOCK_POOL:
        engine.preload_block(block)
    return engine


@given(sequence=ops)
@settings(max_examples=80, deadline=None)
def test_invariants_hold_after_every_transaction(sequence):
    engine = fresh_engine()
    for node, block, is_write in sequence:
        engine.fetch(node, block, is_write, now=0)
        engine.check_invariants()


@given(sequence=ops)
@settings(max_examples=80, deadline=None)
def test_every_block_keeps_exactly_one_master(sequence):
    engine = fresh_engine()
    for node, block, is_write in sequence:
        engine.fetch(node, block, is_write, now=0)
    for block in BLOCK_POOL:
        home = engine.home_of(block)
        owner = engine.directories[home].entry(block).owner
        assert owner is not None
        assert engine.ams[owner].state_of(block).is_master
        masters = [
            n
            for n in range(PARAMS.nodes)
            if engine.ams[n].state_of(block).is_master
        ]
        assert masters == [owner]


@given(sequence=ops)
@settings(max_examples=60, deadline=None)
def test_write_leaves_single_exclusive_copy(sequence):
    engine = fresh_engine()
    for node, block, is_write in sequence:
        engine.fetch(node, block, is_write, now=0)
        if is_write:
            holders = [
                n
                for n in range(PARAMS.nodes)
                if engine.ams[n].contains(block)
            ]
            assert holders == [node]
            assert engine.ams[node].state_of(block) is AMState.EXCLUSIVE


@given(sequence=ops)
@settings(max_examples=60, deadline=None)
def test_fetch_guarantees_local_readability(sequence):
    engine = fresh_engine()
    for node, block, is_write in sequence:
        engine.fetch(node, block, is_write, now=0)
        state = engine.ams[node].state_of(block)
        assert state.readable
        if is_write:
            assert state.writable


@given(sequence=ops)
@settings(max_examples=40, deadline=None)
def test_outcome_cycles_positive_and_translation_bounded(sequence):
    engine = fresh_engine()
    for node, block, is_write in sequence:
        outcome = engine.fetch(node, block, is_write, now=0)
        assert outcome.cycles >= PARAMS.am_hit_latency
        assert 0 <= outcome.translation <= outcome.cycles
