"""Property tests: simulator-level conservation laws.

Random (but well-formed) reference streams must always satisfy:
time accounting conservation, coherence invariants at exit, reference
counting, and determinism.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CustomWorkload, Machine, MachineParams, Scheme, SegmentSpec, Simulator
from repro.system.refs import BARRIER, LOCK, READ, UNLOCK, WRITE

PARAMS = MachineParams.scaled_down(factor=256, nodes=2, page_size=256)
PAGES = 16

# Per-node streams: lists of (kind, offset) where kind selects the op.
mem_ops = st.tuples(
    st.sampled_from([READ, WRITE]),
    st.integers(min_value=0, max_value=PAGES * PARAMS.page_size - 1),
)
node_streams = st.lists(
    st.lists(mem_ops, max_size=40),
    min_size=PARAMS.nodes,
    max_size=PARAMS.nodes,
)


def build_machine(streams, with_sync=False, scheme=Scheme.V_COMA):
    def factory(node, ctx):
        base = ctx.segment("data").base
        lock_word = base  # first word doubles as a lock
        if with_sync and streams[node]:
            yield LOCK, lock_word
        for op, offset in streams[node]:
            yield op, base + offset
        if with_sync and streams[node]:
            yield UNLOCK, lock_word
        if with_sync:
            yield BARRIER, 0

    workload = CustomWorkload(
        [SegmentSpec("data", PAGES * PARAMS.page_size)], factory, name="prop"
    )
    return Machine(PARAMS, scheme, workload)


@given(streams=node_streams)
@settings(max_examples=60, deadline=None)
def test_time_conservation(streams):
    machine = build_machine(streams)
    result = Simulator(machine).run()
    for breakdown in result.breakdowns:
        assert breakdown.total == result.total_time
        assert min(
            breakdown.busy, breakdown.sync, breakdown.loc_stall,
            breakdown.rem_stall, breakdown.tlb_stall,
        ) >= 0


@given(streams=node_streams)
@settings(max_examples=60, deadline=None)
def test_reference_counting(streams):
    machine = build_machine(streams)
    result = Simulator(machine).run()
    assert result.refs_per_node == [len(s) for s in streams]


@given(streams=node_streams)
@settings(max_examples=40, deadline=None)
def test_coherence_invariants_after_run(streams):
    machine = build_machine(streams)
    Simulator(machine).run()
    machine.engine.check_invariants()


@given(streams=node_streams)
@settings(max_examples=30, deadline=None)
def test_deterministic_replay(streams):
    a = Simulator(build_machine(streams)).run()
    b = Simulator(build_machine(streams)).run()
    assert a.total_time == b.total_time
    assert a.counters.to_dict() == b.counters.to_dict()


@given(streams=node_streams)
@settings(max_examples=40, deadline=None)
def test_sync_wrapped_streams_complete(streams):
    machine = build_machine(streams, with_sync=True)
    result = Simulator(machine).run()
    expected_barriers = PARAMS.nodes
    assert result.barriers == expected_barriers
    machine.engine.check_invariants()


@given(streams=node_streams, scheme=st.sampled_from(list(Scheme)))
@settings(max_examples=30, deadline=None)
def test_every_scheme_satisfies_invariants(streams, scheme):
    machine = build_machine(streams, scheme=scheme)
    result = Simulator(machine).run()
    machine.engine.check_invariants()
    assert result.total_references == sum(len(s) for s in streams)
