"""Property tests: TranslationBuffer against invariants and a model."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Organization, TranslationBuffer

sizes = st.sampled_from([1, 2, 4, 8, 16])
pages = st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=300)
orgs = st.sampled_from(list(Organization))


def build(entries, org, seed=0):
    assoc = 2 if org is Organization.SET_ASSOCIATIVE and entries >= 2 else None
    if org is Organization.SET_ASSOCIATIVE and entries < 2:
        org = Organization.DIRECT_MAPPED
    return TranslationBuffer(entries, org, assoc=assoc, rng=random.Random(seed))


@given(entries=sizes, org=orgs, stream=pages)
@settings(max_examples=120, deadline=None)
def test_occupancy_never_exceeds_capacity(entries, org, stream):
    tlb = build(entries, org)
    for page in stream:
        tlb.access(page)
        assert tlb.valid_entries <= tlb.entries


@given(entries=sizes, org=orgs, stream=pages)
@settings(max_examples=120, deadline=None)
def test_accessed_page_always_resident_after_access(entries, org, stream):
    tlb = build(entries, org)
    for page in stream:
        tlb.access(page)
        assert tlb.contains(page)


@given(entries=sizes, org=orgs, stream=pages)
@settings(max_examples=120, deadline=None)
def test_hits_plus_misses_equals_accesses(entries, org, stream):
    tlb = build(entries, org)
    for page in stream:
        tlb.access(page)
    assert tlb.hits + tlb.misses == tlb.accesses == len(stream)


@given(stream=pages)
@settings(max_examples=100, deadline=None)
def test_unbounded_fa_buffer_misses_equal_distinct_pages(stream):
    tlb = build(64, Organization.FULLY_ASSOCIATIVE)
    for page in stream:
        tlb.access(page)
    assert tlb.misses == len(set(stream))


@given(entries=sizes, stream=pages)
@settings(max_examples=100, deadline=None)
def test_direct_mapped_matches_reference_model(entries, stream):
    """A direct-mapped buffer is fully deterministic: model it exactly."""
    tlb = build(entries, Organization.DIRECT_MAPPED)
    slots = {}
    expected_misses = 0
    for page in stream:
        slot = page % entries
        if slots.get(slot) != page:
            expected_misses += 1
            slots[slot] = page
        tlb.access(page)
    assert tlb.misses == expected_misses


@given(entries=sizes, org=orgs, stream=pages)
@settings(max_examples=100, deadline=None)
def test_invalidate_then_contains_false(entries, org, stream):
    tlb = build(entries, org)
    for page in stream:
        tlb.access(page)
    for page in set(stream):
        tlb.invalidate(page)
        assert not tlb.contains(page)
    assert tlb.valid_entries == 0


@given(stream=pages, seed=st.integers(min_value=0, max_value=5))
@settings(max_examples=60, deadline=None)
def test_random_replacement_deterministic_per_seed(stream, seed):
    a = build(4, Organization.FULLY_ASSOCIATIVE, seed=seed)
    b = build(4, Organization.FULLY_ASSOCIATIVE, seed=seed)
    for page in stream:
        assert a.access(page) == b.access(page)


@given(stream=pages)
@settings(max_examples=60, deadline=None)
def test_fa_inclusion_across_sizes(stream):
    """With deterministic LRU-free streams this is not guaranteed for
    random replacement in general, but a buffer holding every page ever
    seen (cold-only) can never miss more than a smaller one."""
    big = build(64, Organization.FULLY_ASSOCIATIVE)  # never evicts here
    small = build(2, Organization.FULLY_ASSOCIATIVE)
    for page in stream:
        big.access(page)
        small.access(page)
    assert big.misses <= small.misses
