"""Property tests: trace record/replay round-trips arbitrary streams."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CustomWorkload, Machine, MachineParams, Scheme, SegmentSpec
from repro.system.refs import BARRIER, READ, WRITE
from repro.workloads import TraceWorkload, record_trace

PARAMS = MachineParams.scaled_down(factor=256, nodes=2, page_size=256)
PAGES = 8

events = st.lists(
    st.one_of(
        st.tuples(
            st.sampled_from([READ, WRITE]),
            st.integers(min_value=0, max_value=PAGES * PARAMS.page_size - 1),
        ),
    ),
    min_size=1,
    max_size=60,
)
node_streams = st.lists(events, min_size=PARAMS.nodes, max_size=PARAMS.nodes)


def machine_for(streams):
    def factory(node, ctx):
        base = ctx.segment("data").base
        for op, offset in streams[node]:
            yield op, base + offset

    workload = CustomWorkload(
        [SegmentSpec("data", PAGES * PARAMS.page_size)], factory, name="tprop"
    )
    return Machine(PARAMS, Scheme.V_COMA, workload), workload


@given(streams=node_streams)
@settings(max_examples=60, deadline=None)
def test_roundtrip_preserves_ops_and_relative_layout(streams):
    machine, workload = machine_for(streams)
    buffer = io.StringIO()
    record_trace(workload, machine.ctx, buffer)
    replayed = TraceWorkload(buffer.getvalue())
    replay_machine = Machine(PARAMS, Scheme.V_COMA, replayed)

    original_base = machine.space["data"].base
    for node in range(PARAMS.nodes):
        original = [(op, v - original_base) for op, v in machine.node_stream(node)]
        got = list(replay_machine.node_stream(node))
        assert [op for op, _ in got] == [op for op, _ in original]
        # Relative offsets are preserved up to one common rebase.
        orig_addrs = [v for _, v in original]
        got_addrs = [v for _, v in got]
        if orig_addrs:
            lowest_page = min(orig_addrs) // PARAMS.page_size * PARAMS.page_size
            deltas_orig = [v - lowest_page for v in orig_addrs]
            base2 = min(
                a // PARAMS.page_size * PARAMS.page_size
                for node2 in range(PARAMS.nodes)
                for _, a in replay_machine.node_stream(node2)
            )
            # Global rebase: same shift for every node.
            global_low = min(
                v
                for node2 in range(PARAMS.nodes)
                for _, v in machine.node_stream(node2)
            ) - original_base
            global_low_page = (global_low + original_base) // PARAMS.page_size
            shift = (
                replay_machine.space["trace"].base
                - global_low_page * PARAMS.page_size
            )
            assert got_addrs == [v + original_base + shift for v in orig_addrs]


@given(streams=node_streams)
@settings(max_examples=30, deadline=None)
def test_replay_is_simulatable(streams):
    from repro import Simulator

    machine, workload = machine_for(streams)
    buffer = io.StringIO()
    record_trace(workload, machine.ctx, buffer)
    replayed = TraceWorkload(buffer.getvalue())
    replay_machine = Machine(PARAMS, Scheme.V_COMA, replayed)
    result = Simulator(replay_machine).run()
    replay_machine.engine.check_invariants()
    assert result.total_references == sum(len(s) for s in streams)
