"""Property tests: virtual-memory substrate invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MachineParams
from repro.common.address import AddressLayout
from repro.common.errors import CapacityError
from repro.vm.frames import FrameAllocator
from repro.vm.pressure import PressureTracker
from repro.vm.segments import SegmentedAddressSpace

PARAMS = MachineParams.scaled_down(factor=64, nodes=4, page_size=256)
LAYOUT = AddressLayout.from_params(PARAMS)


# ----------------------------------------------------------------------
# segments
# ----------------------------------------------------------------------
segment_requests = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=1 << 16),  # size
        st.sampled_from([None, 256, 512, 4096]),  # alignment
    ),
    min_size=1,
    max_size=20,
)


@given(requests=segment_requests)
@settings(max_examples=150, deadline=None)
def test_segments_disjoint_aligned_and_ordered(requests):
    space = SegmentedAddressSpace(page_size=256)
    segments = [
        space.allocate(f"s{i}", size, alignment=align)
        for i, (size, align) in enumerate(requests)
    ]
    for i, segment in enumerate(segments):
        align = requests[i][1] or 256
        assert segment.base % align == 0
        if i:
            assert segment.base >= segments[i - 1].end
    # segment_of finds exactly the covering segment
    for segment in segments:
        assert space.segment_of(segment.base) is segment
        assert space.segment_of(segment.end - 1) is segment


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
@given(
    vpns=st.lists(st.integers(min_value=0, max_value=1 << 16), unique=True, min_size=1, max_size=200),
    coloring=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_frame_allocation_unique_and_colored(vpns, coloring):
    alloc = FrameAllocator(LAYOUT, PARAMS.pages_per_am, coloring=coloring)
    seen = set()
    for vpn in vpns:
        try:
            pfn = alloc.allocate(vpn)
        except CapacityError:
            break
        assert pfn not in seen
        seen.add(pfn)
        assert 0 <= alloc.home_of(pfn) < PARAMS.nodes
        if coloring:
            assert alloc.color_of(pfn) == vpn % LAYOUT.global_page_sets


@given(vpns=st.lists(st.integers(min_value=0, max_value=1 << 10), unique=True, min_size=2, max_size=50))
@settings(max_examples=60, deadline=None)
def test_freed_frames_are_recycled(vpns):
    alloc = FrameAllocator(LAYOUT, PARAMS.pages_per_am)
    pfns = [alloc.allocate(v) for v in vpns]
    for pfn in pfns:
        alloc.free(pfn)
    again = [alloc.allocate(v + (1 << 20)) for v in vpns]
    assert set(again) == set(pfns)


# ----------------------------------------------------------------------
# pressure
# ----------------------------------------------------------------------
pressure_ops = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=7)),
    max_size=200,
)


@given(ops=pressure_ops)
@settings(max_examples=150, deadline=None)
def test_pressure_bookkeeping_consistent(ops):
    tracker = PressureTracker(global_page_sets=8, slots_per_set=4)
    model = [0] * 8
    for is_alloc, gps in ops:
        if is_alloc:
            if model[gps] + 1 > 4:
                continue
            tracker.allocate_page(gps)
            model[gps] += 1
        else:
            if model[gps] == 0:
                continue
            tracker.free_page(gps)
            model[gps] -= 1
        assert tracker.occupancy(gps) == model[gps]
        assert 0.0 <= tracker.pressure(gps) <= 1.0
        assert tracker.peak[gps] >= model[gps]
    profile = tracker.profile()
    assert profile == [m / 4 for m in model]
