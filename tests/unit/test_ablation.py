"""Ablation experiment helpers."""

import pytest

from repro import MachineParams, make_workload
from repro.analysis.ablation import (
    SharedVsPartitionedAgent,
    sharing_ablation,
    shootdown_scaling,
    writeback_bypass_ablation,
)
from repro.workloads import OceanWorkload


@pytest.fixture
def params():
    return MachineParams.scaled_down(factor=64, nodes=4, page_size=256)


class TestSharedVsPartitionedAgent:
    def test_both_sides_observe_stream(self, params):
        agent = SharedVsPartitionedAgent(params, entries=4)
        agent.at_home(0, 8, requester=1)
        agent.at_home(0, 8, requester=2)
        assert agent.shared_accesses == 2
        # Shared structure: second access hits; partitioned: both cold.
        assert agent.shared_misses == 1
        assert agent.partitioned_misses == 2

    def test_requesterless_accesses_only_feed_shared(self, params):
        agent = SharedVsPartitionedAgent(params, entries=4)
        agent.at_home(0, 8)
        assert agent.shared_accesses == 1
        assert agent.partitioned_misses == 0


class TestSharingAblation:
    def test_radix_shows_sharing_win(self, params):
        stats = sharing_ablation(
            params, make_workload("radix", intensity=0.3), entries=8,
            max_refs_per_node=3000,
        )
        assert stats["accesses"] > 0
        # The partitioned variant has 4x the aggregate capacity, so a
        # shared structure matching (or beating) it is a sharing win.
        assert stats["shared_misses"] <= stats["partitioned_misses"] * 1.3

    def test_returns_expected_keys(self, params):
        stats = sharing_ablation(
            params, make_workload("barnes", intensity=0.1), entries=8,
            max_refs_per_node=500,
        )
        assert set(stats) == {"entries", "accesses", "shared_misses", "partitioned_misses"}


class TestWritebackBypass:
    def test_bypass_never_increases_stall(self, params):
        stats = writeback_bypass_ablation(
            params, lambda: OceanWorkload(intensity=0.3), entries=8,
            max_refs_per_node=2000,
        )
        assert stats["stall_saved"] >= 0
        with_wb = stats["with_writebacks"].timing_summary()
        bypass = stats["bypass"].timing_summary()
        assert bypass["accesses"] <= with_wb["accesses"]


class TestShootdownScaling:
    def test_tlb_cost_grows_vcoma_constant(self):
        rows = shootdown_scaling((2, 4, 8))
        tlb_costs = [t for _, t, _ in rows]
        vcoma_costs = [v for _, _, v in rows]
        assert tlb_costs == sorted(tlb_costs) and tlb_costs[-1] > tlb_costs[0]
        assert len(set(vcoma_costs)) == 1
        assert all(v < t for (_, t, v) in rows)
