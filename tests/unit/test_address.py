"""AddressLayout field decomposition (paper Figure 6)."""

import pytest

from repro import MachineParams
from repro.common.address import AddressLayout


@pytest.fixture
def paper_layout():
    return AddressLayout.from_params(MachineParams.paper_baseline())


class TestPaperLayout:
    def test_bit_widths(self, paper_layout):
        lay = paper_layout
        assert lay.block_bits == 7  # 128 B blocks
        assert lay.page_bits == 12  # 4 KB pages
        assert lay.node_bits == 5  # 32 nodes
        assert lay.am_set_bits == 13  # 8192 sets

    def test_blocks_per_page(self, paper_layout):
        assert paper_layout.blocks_per_page == 32

    def test_global_page_sets(self, paper_layout):
        # s + b - n = 13 + 7 - 12 = 8 -> 256 colors.
        assert paper_layout.global_page_set_bits == 8
        assert paper_layout.global_page_sets == 256


class TestFields:
    def test_home_node_is_low_page_bits(self, small_layout):
        addr = small_layout.make_address(vpn=0b101101, offset=17)
        assert small_layout.home_node(addr) == 0b101101 % small_layout.nodes

    def test_vpn_offset_roundtrip(self, small_layout):
        addr = small_layout.make_address(vpn=1234, offset=99)
        assert small_layout.vpn(addr) == 1234
        assert small_layout.page_offset(addr) == 99
        assert small_layout.page_base(addr) == 1234 * small_layout.page_size

    def test_make_address_bounds_check(self, small_layout):
        with pytest.raises(ValueError):
            small_layout.make_address(vpn=1, offset=small_layout.page_size)

    def test_block_base_masks_offset(self, small_layout):
        block_size = 1 << small_layout.block_bits
        addr = 5 * block_size + 17
        assert small_layout.block_base(addr) == 5 * block_size

    def test_am_set_index_consecutive_blocks(self, small_layout):
        block = 1 << small_layout.block_bits
        s0 = small_layout.am_set_index(0)
        s1 = small_layout.am_set_index(block)
        assert s1 == (s0 + 1) % small_layout.am_sets

    def test_page_spans_consecutive_sets(self, small_layout):
        vpn = 7
        sets = list(small_layout.page_am_sets(vpn))
        assert len(sets) == small_layout.blocks_per_page
        assert sets == list(range(sets[0], sets[0] + len(sets)))

    def test_directory_entry_index_within_page(self, small_layout):
        base = small_layout.make_address(vpn=3)
        block = 1 << small_layout.block_bits
        for i in range(small_layout.blocks_per_page):
            assert small_layout.directory_entry_index(base + i * block) == i

    def test_global_page_set_periodic(self, small_layout):
        g = small_layout.global_page_sets
        for vpn in (0, 1, g - 1, g, 2 * g + 3):
            addr = small_layout.make_address(vpn)
            assert small_layout.global_page_set(addr) == vpn % g

    def test_same_color_pages_share_am_sets(self, small_layout):
        g = small_layout.global_page_sets
        vpn_a, vpn_b = 5, 5 + g  # same color
        sets_a = list(small_layout.page_am_sets(vpn_a))
        sets_b = list(small_layout.page_am_sets(vpn_b))
        assert sets_a == sets_b

    def test_flc_slc_block_bases(self, small_layout):
        addr = 0x12345
        assert small_layout.flc_block_base(addr) % (1 << small_layout.flc_block_bits) == 0
        assert small_layout.slc_block_base(addr) % (1 << small_layout.slc_block_bits) == 0
        assert small_layout.flc_block_base(addr) <= addr
