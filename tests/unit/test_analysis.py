"""Analysis helpers: equivalent sizes, tables, figures rendering."""

import math

import pytest

from repro import MachineParams, Organization, Scheme, TapPoint, make_workload
from repro.analysis import (
    equivalent_tlb_size,
    pressure_profile,
    render_breakdown_bars,
    render_dm_vs_fa,
    render_equivalent_size_table,
    render_miss_curves,
    render_miss_rate_table,
    render_overhead_table,
    render_pressure_profile,
    run_execution_breakdown,
    run_miss_sweep,
    run_timing,
    scheme_miss_rates,
)
from repro.common.stats import AverageBreakdown
from repro.core.tlb import Organization as Org
from repro.system.taps import StudyResults


def make_study(curve_points, tap=TapPoint.L0):
    """Fabricate StudyResults with a given (size -> misses) curve."""
    sizes = tuple(size for size, _ in curve_points)
    orgs = (Organization.FULLY_ASSOCIATIVE,)
    misses = {}
    for t in TapPoint:
        for size, count in curve_points:
            misses[(t, size, orgs[0])] = count if t is tap else 0
    accesses = {t: 100 for t in TapPoint}
    return StudyResults(4, sizes, orgs, misses, accesses, total_references=1000)


class TestEquivalentSize:
    def test_exact_point(self):
        study = make_study([(8, 100), (32, 50), (128, 10)])
        assert equivalent_tlb_size(study, TapPoint.L0, 50) == pytest.approx(32)

    def test_interpolated_between_points(self):
        study = make_study([(8, 100), (32, 50)])
        size = equivalent_tlb_size(study, TapPoint.L0, 75)
        assert 8 < size < 32

    def test_already_better_at_smallest(self):
        study = make_study([(8, 100), (32, 50)])
        assert equivalent_tlb_size(study, TapPoint.L0, 200) == 8.0

    def test_unreachable_target(self):
        study = make_study([(8, 100), (32, 50)])
        assert math.isinf(equivalent_tlb_size(study, TapPoint.L0, 5))

    def test_flat_curve_segment(self):
        study = make_study([(8, 100), (32, 100), (128, 10)])
        size = equivalent_tlb_size(study, TapPoint.L0, 100)
        assert size == 8.0

    def test_monotonic_in_target(self):
        study = make_study([(8, 100), (32, 50), (128, 10)])
        sizes = [equivalent_tlb_size(study, TapPoint.L0, t) for t in (90, 60, 30, 12)]
        assert sizes == sorted(sizes)


class TestExperimentRunners:
    @pytest.fixture(scope="class")
    def sweep(self, request):
        params = MachineParams.scaled_down(factor=64, nodes=4, page_size=256)
        return run_miss_sweep(
            params,
            make_workload("ocean", intensity=0.2),
            sizes=(8, 32),
            max_refs_per_node=800,
        )

    def test_sweep_produces_all_taps(self, sweep):
        study = sweep.study_results()
        for tap in TapPoint:
            assert study.misses(tap, 8) >= 0

    def test_scheme_miss_rates_has_five_schemes(self, sweep):
        rates = scheme_miss_rates(sweep.study_results(), 8)
        assert set(rates) == set(Scheme)
        assert all(0 <= r <= 1 for r in rates.values())

    def test_pressure_profile_shape(self):
        params = MachineParams.scaled_down(factor=64, nodes=4, page_size=256)
        profile = pressure_profile(params, make_workload("ocean"))
        assert len(profile) == params.global_page_sets
        assert all(0 <= p <= 1 for p in profile)

    def test_run_timing_l2_writeback_toggle(self):
        params = MachineParams.scaled_down(factor=64, nodes=4, page_size=256)
        with_wb = run_timing(
            params, Scheme.L2_TLB, make_workload("ocean", intensity=0.2),
            entries=8, max_refs_per_node=500,
        )
        without = run_timing(
            params, Scheme.L2_TLB, make_workload("ocean", intensity=0.2),
            entries=8, include_l2_writebacks=False, max_refs_per_node=500,
        )
        assert without.timing_summary()["accesses"] <= with_wb.timing_summary()["accesses"]

    def test_run_execution_breakdown_labels(self):
        params = MachineParams.scaled_down(factor=64, nodes=4, page_size=256)
        from repro.workloads import OceanWorkload

        runs = run_execution_breakdown(
            params, OceanWorkload, entries=8, max_refs_per_node=200
        )
        assert set(runs) == {"TLB/8", "TLB/8/DM", "DLB/8", "DLB/8/DM"}
        assert runs["TLB/8"].scheme is Scheme.L0_TLB
        assert runs["DLB/8"].scheme is Scheme.V_COMA


class TestRendering:
    def test_miss_rate_table_contains_schemes_and_benchmarks(self):
        study = make_study([(8, 10), (32, 5), (128, 1)])
        text = render_miss_rate_table({"ocean": study}, sizes=(8, 32, 128))
        assert "OCEAN" in text and "V-COMA/8" in text

    def test_equivalent_table_renders_inf(self):
        study = make_study([(8, 100), (32, 50)], tap=TapPoint.L0)
        text = render_equivalent_size_table({"x": study}, dlb_entries=8)
        assert ">32" in text  # DLB target 0 misses unreachable by TLBs

    def test_overhead_table(self, small_params):
        result = run_timing(
            small_params, Scheme.L0_TLB, make_workload("ocean", intensity=0.1),
            entries=8, max_refs_per_node=200,
        )
        text = render_overhead_table({"L0-TLB/8": {"ocean": result}})
        assert "L0-TLB/8" in text and "OCEAN" in text

    def test_overhead_table_missing_cell(self, small_params):
        text = render_overhead_table({"L0-TLB/8": {}})
        assert "Table 4" in text

    def test_miss_curves_rendering(self):
        study = make_study([(8, 10), (32, 5)])
        text = render_miss_curves("ocean", study)
        assert "L2-TLB/no_wback" in text and "V-COMA" in text

    def test_dm_vs_fa_rendering(self):
        sizes = (8, 32)
        orgs = (Organization.FULLY_ASSOCIATIVE, Organization.DIRECT_MAPPED)
        misses = {
            (t, s, o): 1 for t in TapPoint for s in sizes for o in orgs
        }
        study = StudyResults(4, sizes, orgs, misses, {t: 4 for t in TapPoint}, 100)
        text = render_dm_vs_fa("fft", study)
        assert "/DM" in text

    def test_breakdown_bars_normalized(self):
        bars = {
            "TLB/8": AverageBreakdown(busy=50, loc_stall=30, rem_stall=20),
            "DLB/8": AverageBreakdown(busy=50, loc_stall=30, rem_stall=10),
        }
        text = render_breakdown_bars("radix", bars, baseline_label="TLB/8")
        assert "TLB/8" in text and "legend" in text
        assert "0.900" in text  # DLB total relative to baseline

    def test_pressure_profile_rendering(self):
        text = render_pressure_profile("fft", [0.5, 0.25, 0.25, 0.5])
        assert "mean=0.375" in text

    def test_pressure_profile_bucketing(self):
        profile = [0.5] * 100
        text = render_pressure_profile("fft", profile, max_rows=10)
        assert text.count("|") <= 11

    def test_pressure_profile_empty(self):
        assert "empty" in render_pressure_profile("x", [])
