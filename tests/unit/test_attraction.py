"""AttractionMemory: states, LRU, victim policy."""

import pytest

from repro.coma.attraction import AttractionMemory
from repro.coma.states import AMState
from repro.common.errors import ProtocolError


@pytest.fixture
def am(tiny_layout):
    return AttractionMemory(tiny_layout, assoc=4, node=0)


def blocks_in_same_set(layout, count):
    """Distinct block addresses mapping to AM set 0."""
    stride = layout.am_sets << layout.block_bits
    return [i * stride for i in range(count)]


class TestLookup:
    def test_miss_returns_invalid(self, am):
        assert am.lookup(0) is AMState.INVALID
        assert am.misses == 1

    def test_install_then_hit(self, am):
        am.install(0, AMState.MASTER_SHARED)
        assert am.lookup(0) is AMState.MASTER_SHARED
        assert am.hits == 1

    def test_block_granularity(self, am, tiny_layout):
        am.install(0, AMState.SHARED)
        within = (1 << tiny_layout.block_bits) - 1
        assert am.lookup(within) is AMState.SHARED

    def test_state_of_no_stats(self, am):
        am.install(0, AMState.EXCLUSIVE)
        before = am.accesses
        assert am.state_of(0) is AMState.EXCLUSIVE
        assert am.accesses == before


class TestStates:
    def test_set_state_transitions(self, am):
        am.install(0, AMState.EXCLUSIVE)
        am.set_state(0, AMState.MASTER_SHARED)
        assert am.state_of(0) is AMState.MASTER_SHARED

    def test_set_state_invalid_removes(self, am):
        am.install(0, AMState.SHARED)
        am.set_state(0, AMState.INVALID)
        assert not am.contains(0)

    def test_set_state_absent_raises(self, am):
        with pytest.raises(ProtocolError):
            am.set_state(0, AMState.SHARED)

    def test_install_invalid_rejected(self, am):
        with pytest.raises(ProtocolError):
            am.install(0, AMState.INVALID)

    def test_master_flags(self):
        assert AMState.MASTER_SHARED.is_master and AMState.EXCLUSIVE.is_master
        assert not AMState.SHARED.is_master
        assert AMState.EXCLUSIVE.writable and not AMState.MASTER_SHARED.writable


class TestVictims:
    def test_no_victim_when_free(self, am):
        assert am.choose_victim(0) is None

    def test_prefers_shared_over_master(self, am, tiny_layout):
        blocks = blocks_in_same_set(tiny_layout, 4)
        am.install(blocks[0], AMState.MASTER_SHARED)
        am.install(blocks[1], AMState.SHARED)
        am.install(blocks[2], AMState.EXCLUSIVE)
        am.install(blocks[3], AMState.SHARED)
        victim = am.choose_victim(blocks[0])
        assert victim.state is AMState.SHARED
        assert victim.block == blocks[1]  # oldest shared first

    def test_falls_back_to_lru_master(self, am, tiny_layout):
        blocks = blocks_in_same_set(tiny_layout, 4)
        for b in blocks:
            am.install(b, AMState.MASTER_SHARED)
        victim = am.choose_victim(blocks[0])
        assert victim == (blocks[0], AMState.MASTER_SHARED)

    def test_droppable_victim_none_when_all_masters(self, am, tiny_layout):
        blocks = blocks_in_same_set(tiny_layout, 4)
        for b in blocks:
            am.install(b, AMState.EXCLUSIVE)
        assert am.droppable_victim(blocks[0]) is None

    def test_install_into_full_set_raises(self, am, tiny_layout):
        blocks = blocks_in_same_set(tiny_layout, 5)
        for b in blocks[:4]:
            am.install(b, AMState.SHARED)
        with pytest.raises(ProtocolError):
            am.install(blocks[4], AMState.SHARED)

    def test_has_invalid_slot(self, am, tiny_layout):
        blocks = blocks_in_same_set(tiny_layout, 4)
        assert am.has_invalid_slot(blocks[0])
        for b in blocks:
            am.install(b, AMState.SHARED)
        assert not am.has_invalid_slot(blocks[0])
        assert am.free_ways(blocks[0]) == 0


class TestEviction:
    def test_evict_returns_victim(self, am):
        am.install(0, AMState.SHARED)
        assert am.evict(0) == (0, AMState.SHARED)
        assert not am.contains(0)

    def test_evict_absent_raises(self, am):
        with pytest.raises(ProtocolError):
            am.evict(0)

    def test_invalidate_absent_is_none(self, am):
        assert am.invalidate(0) is None

    def test_occupancy_bookkeeping(self, am, tiny_layout):
        blocks = blocks_in_same_set(tiny_layout, 3)
        for b in blocks:
            am.install(b, AMState.SHARED)
        assert am.occupancy() == 3
        assert am.set_occupancy(tiny_layout.am_set_index(blocks[0])) == 3
        assert sorted(b for b, _ in am.resident_blocks()) == sorted(blocks)
