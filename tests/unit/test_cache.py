"""Generic set-associative cache model."""

import pytest

from repro.cache import CLEAN_EXCLUSIVE, CLEAN_SHARED, DIRTY, Cache
from repro.common.errors import ConfigurationError


def make_cache(size=256, block=32, assoc=2):
    return Cache(size, block, assoc, name="t")


class TestConstruction:
    def test_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            Cache(100, 32, 2)  # size not multiple of block*assoc
        with pytest.raises(ConfigurationError):
            Cache(0, 32, 1)
        with pytest.raises(ConfigurationError):
            Cache(96, 32, 1)  # 3 sets, not a power of two
        with pytest.raises(ConfigurationError):
            Cache(256, 24, 1)  # block not a power of two

    def test_set_count(self):
        assert make_cache().sets == 4


class TestLookupInsert:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert c.lookup(0) is False
        c.insert(0)
        assert c.lookup(0) is True
        assert c.misses == 1 and c.hits == 1

    def test_block_granularity(self):
        c = make_cache()
        c.insert(0)
        assert c.lookup(31) is True  # same 32 B block
        assert c.lookup(32) is False  # next block

    def test_lru_eviction_order(self):
        c = make_cache()  # 2-way
        set_stride = c.sets * c.block_size
        a, b, d = 0, set_stride, 2 * set_stride  # same set
        c.insert(a)
        c.insert(b)
        c.lookup(a)  # a is now MRU
        victim = c.insert(d)
        assert victim.block == b

    def test_insert_existing_refreshes_without_eviction(self):
        c = make_cache()
        c.insert(0, DIRTY)
        assert c.insert(0, CLEAN_SHARED) is None
        # refill never downgrades state
        assert c.state_of(0) == DIRTY

    def test_victim_carries_state(self):
        c = Cache(64, 32, 1, name="dm")  # direct mapped, 2 sets
        c.insert(0, DIRTY)
        victim = c.insert(64)  # same set 0
        assert victim == (0, DIRTY)
        assert victim.dirty

    def test_contains_no_side_effects(self):
        c = make_cache()
        c.insert(0)
        before = (c.hits, c.misses)
        assert c.contains(0) and not c.contains(32)
        assert (c.hits, c.misses) == before

    def test_lookup_without_touch_keeps_lru(self):
        c = make_cache()
        set_stride = c.sets * c.block_size
        a, b, d = 0, set_stride, 2 * set_stride
        c.insert(a)
        c.insert(b)
        c.lookup(a, touch=False)  # a stays LRU
        victim = c.insert(d)
        assert victim.block == a


class TestStates:
    def test_set_state(self):
        c = make_cache()
        c.insert(0, CLEAN_SHARED)
        c.set_state(0, DIRTY)
        assert c.state_of(0) == DIRTY

    def test_set_state_absent_raises(self):
        with pytest.raises(KeyError):
            make_cache().set_state(0, DIRTY)

    def test_state_of_absent_is_none(self):
        assert make_cache().state_of(0) is None


class TestInvalidation:
    def test_invalidate_returns_state(self):
        c = make_cache()
        c.insert(0, CLEAN_EXCLUSIVE)
        assert c.invalidate(0) == (0, CLEAN_EXCLUSIVE)
        assert not c.contains(0)

    def test_invalidate_absent(self):
        assert make_cache().invalidate(0) is None

    def test_invalidate_span(self):
        c = make_cache()
        for addr in (0, 32, 64):
            c.insert(addr, DIRTY)
        evicted = list(c.invalidate_span(0, 64))  # blocks 0 and 32
        assert {e.block for e in evicted} == {0, 32}
        assert c.contains(64)

    def test_downgrade_span_yields_only_dirty(self):
        c = make_cache()
        c.insert(0, DIRTY)
        c.insert(32, CLEAN_EXCLUSIVE)
        flushed = list(c.downgrade_span(0, 64))
        assert [e.block for e in flushed] == [0]
        assert c.state_of(0) == CLEAN_SHARED
        assert c.state_of(32) == CLEAN_SHARED

    def test_flush_yields_dirty_and_empties(self):
        c = make_cache()
        c.insert(0, DIRTY)
        c.insert(32, CLEAN_SHARED)
        dirty = list(c.flush())
        assert [e.block for e in dirty] == [0]
        assert c.occupancy() == 0


class TestStats:
    def test_occupancy_and_residents(self):
        c = make_cache()
        c.insert(0)
        c.insert(32)
        assert c.occupancy() == 2
        assert set(c.resident_blocks()) == {0, 32}

    def test_miss_rate_and_reset(self):
        c = make_cache()
        c.lookup(0)
        c.insert(0)
        c.lookup(0)
        assert c.miss_rate == pytest.approx(0.5)
        c.reset_stats()
        assert c.accesses == 0
