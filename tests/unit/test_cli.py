"""Command-line interface."""

import pytest

from repro.cli import build_parser, machine_params, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


FAST = ["--nodes", "2", "--factor", "256", "--page-size", "256", "--refs", "300"]


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_machine_params_from_args(self):
        args = build_parser().parse_args(["describe", "--nodes", "4", "--factor", "64", "--page-size", "256"])
        params = machine_params(args)
        assert params.nodes == 4 and params.page_size == 256

    def test_paper_machine_flag(self):
        args = build_parser().parse_args(["describe", "--paper-machine"])
        params = machine_params(args)
        assert params.nodes == 32 and params.am_size == 4 * 1024 * 1024

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "nope"] + FAST)


class TestCommands:
    def test_describe(self, capsys):
        code, out = run_cli(capsys, "describe", *FAST)
        assert code == 0
        assert "2 nodes" in out

    def test_workloads_listing(self, capsys):
        code, out = run_cli(capsys, "workloads")
        assert code == 0
        for name in ("radix", "fft", "ocean"):
            assert name in out

    def test_sweep(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "ocean", "--sizes", "8,32", "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "V-COMA" in out and "L2-TLB/no_wback" in out

    def test_sweep_with_dm(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "ocean", "--sizes", "8", "--dm", "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "/DM" in out

    def test_timing(self, capsys):
        code, out = run_cli(
            capsys, "timing", "barnes", "--scheme", "L0-TLB", "--entries", "8",
            "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "translation" in out and "misses" in out

    def test_table2(self, capsys):
        code, out = run_cli(
            capsys, "table2", "ocean", "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "Table 2" in out and "OCEAN" in out

    def test_table3(self, capsys):
        code, out = run_cli(
            capsys, "table3", "ocean", "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "Table 3" in out

    def test_table4(self, capsys):
        code, out = run_cli(
            capsys, "table4", "barnes", "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "Table 4" in out and "DLB/16" in out

    def test_pressure(self, capsys):
        code, out = run_cli(capsys, "pressure", "fft", *FAST)
        assert code == 0
        assert "Pressure Profile" in out

    def test_pressure_raytrace_v2(self, capsys):
        code, out = run_cli(capsys, "pressure", "raytrace", "--v2", *FAST)
        assert code == 0
        assert "mean=" in out


class TestReportCommand:
    def test_report_writes_file(self, capsys, tmp_path):
        out_file = tmp_path / "report.md"
        code, out = run_cli(
            capsys, "report", "ocean", "--out", str(out_file),
            "--no-figures", *FAST
        )
        assert code == 0
        text = out_file.read_text()
        assert "Table 2" in text and "Table 4" in text
        assert "Figure 8" not in text  # --no-figures

    def test_report_with_figures(self, capsys, tmp_path):
        out_file = tmp_path / "report.md"
        code, out = run_cli(
            capsys, "report", "barnes", "--out", str(out_file), *FAST
        )
        assert code == 0
        text = out_file.read_text()
        assert "Figure 8" in text and "Figure 11" in text


class TestTraceCommands:
    def test_trace_then_replay(self, capsys, tmp_path):
        trace_file = tmp_path / "barnes.trace"
        code, out = run_cli(
            capsys, "trace", "barnes", "--out", str(trace_file),
            "--intensity", "0.1", *FAST
        )
        assert code == 0 and "events" in out
        assert trace_file.read_text().startswith("#repro-trace")

        code, out = run_cli(
            capsys, "replay", str(trace_file), "--scheme", "L0-TLB", *FAST
        )
        assert code == 0
        assert "translation" in out

    def test_profile_command(self, capsys):
        code, out = run_cli(
            capsys, "profile", "radix", "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "keys_out" in out and "writes%" in out


class TestObservabilityCommands:
    def test_metrics_command_openmetrics(self, capsys):
        code, out = run_cli(
            capsys, "metrics", "radix", "--intensity", "0.2", *FAST
        )
        assert code == 0
        assert "# TYPE repro_events_total counter" in out
        assert out.rstrip().endswith("# EOF")

    def test_metrics_command_json_to_file(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "metrics.json"
        trace_file = tmp_path / "run.jsonl"
        code, out = run_cli(
            capsys, "metrics", "radix", "--intensity", "0.2",
            "--format", "json", "--out", str(out_file),
            "--trace-out", str(trace_file), *FAST
        )
        assert code == 0
        data = json.loads(out_file.read_text())
        assert "repro_events_total" in data

        from repro.obs import read_trace, validate_trace

        validate_trace(read_trace(str(trace_file)))

    def test_timing_trace_and_metrics_out(self, capsys, tmp_path):
        trace_file = tmp_path / "timing.jsonl"
        prom_file = tmp_path / "timing.prom"
        code, out = run_cli(
            capsys, "timing", "radix", "--intensity", "0.2",
            "--trace-out", str(trace_file),
            "--metrics-out", str(prom_file), *FAST
        )
        assert code == 0
        assert "translation" in out
        assert prom_file.read_text().endswith("# EOF\n")

        from repro.obs import read_trace, validate_trace

        validate_trace(read_trace(str(trace_file)))

    def test_report_metrics_out(self, capsys, tmp_path):
        out_file = tmp_path / "report.md"
        metrics_file = tmp_path / "report.json"
        code, out = run_cli(
            capsys, "report", "ocean", "--out", str(out_file),
            "--no-figures", "--metrics-out", str(metrics_file), *FAST
        )
        assert code == 0
        assert "Telemetry" in out_file.read_text()
        import json

        data = json.loads(metrics_file.read_text())
        assert "repro_runner_jobs_total" in data
        assert "repro_phase_seconds" in data
