"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, machine_params, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


FAST = ["--nodes", "2", "--factor", "256", "--page-size", "256", "--refs", "300"]


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_machine_params_from_args(self):
        args = build_parser().parse_args(["describe", "--nodes", "4", "--factor", "64", "--page-size", "256"])
        params = machine_params(args)
        assert params.nodes == 4 and params.page_size == 256

    def test_paper_machine_flag(self):
        args = build_parser().parse_args(["describe", "--paper-machine"])
        params = machine_params(args)
        assert params.nodes == 32 and params.am_size == 4 * 1024 * 1024

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "nope"] + FAST)


class TestCommands:
    def test_describe(self, capsys):
        code, out = run_cli(capsys, "describe", *FAST)
        assert code == 0
        assert "2 nodes" in out

    def test_workloads_listing(self, capsys):
        code, out = run_cli(capsys, "workloads")
        assert code == 0
        for name in ("radix", "fft", "ocean"):
            assert name in out

    def test_sweep(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "ocean", "--sizes", "8,32", "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "V-COMA" in out and "L2-TLB/no_wback" in out

    def test_sweep_with_dm(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "ocean", "--sizes", "8", "--dm", "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "/DM" in out

    def test_timing(self, capsys):
        code, out = run_cli(
            capsys, "timing", "barnes", "--scheme", "L0-TLB", "--entries", "8",
            "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "translation" in out and "misses" in out

    def test_table2(self, capsys):
        code, out = run_cli(
            capsys, "table2", "ocean", "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "Table 2" in out and "OCEAN" in out

    def test_table3(self, capsys):
        code, out = run_cli(
            capsys, "table3", "ocean", "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "Table 3" in out

    def test_table4(self, capsys):
        code, out = run_cli(
            capsys, "table4", "barnes", "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "Table 4" in out and "DLB/16" in out

    def test_pressure(self, capsys):
        code, out = run_cli(capsys, "pressure", "fft", *FAST)
        assert code == 0
        assert "Pressure Profile" in out

    def test_pressure_raytrace_v2(self, capsys):
        code, out = run_cli(capsys, "pressure", "raytrace", "--v2", *FAST)
        assert code == 0
        assert "mean=" in out


class TestReportCommand:
    def test_report_writes_file(self, capsys, tmp_path):
        out_file = tmp_path / "report.md"
        code, out = run_cli(
            capsys, "report", "ocean", "--out", str(out_file),
            "--no-figures", *FAST
        )
        assert code == 0
        text = out_file.read_text()
        assert "Table 2" in text and "Table 4" in text
        assert "Figure 8" not in text  # --no-figures

    def test_report_with_figures(self, capsys, tmp_path):
        out_file = tmp_path / "report.md"
        code, out = run_cli(
            capsys, "report", "barnes", "--out", str(out_file), *FAST
        )
        assert code == 0
        text = out_file.read_text()
        assert "Figure 8" in text and "Figure 11" in text


class TestTraceCommands:
    def test_trace_then_replay(self, capsys, tmp_path):
        trace_file = tmp_path / "barnes.trace"
        code, out = run_cli(
            capsys, "trace", "barnes", "--out", str(trace_file),
            "--intensity", "0.1", *FAST
        )
        assert code == 0 and "events" in out
        assert trace_file.read_text().startswith("#repro-trace")

        code, out = run_cli(
            capsys, "replay", str(trace_file), "--scheme", "L0-TLB", *FAST
        )
        assert code == 0
        assert "translation" in out

    def test_profile_command(self, capsys):
        code, out = run_cli(
            capsys, "profile", "radix", "--intensity", "0.1", *FAST
        )
        assert code == 0
        assert "keys_out" in out and "writes%" in out


class TestObservabilityCommands:
    def test_metrics_command_openmetrics(self, capsys):
        code, out = run_cli(
            capsys, "metrics", "radix", "--intensity", "0.2", *FAST
        )
        assert code == 0
        assert "# TYPE repro_events_total counter" in out
        assert out.rstrip().endswith("# EOF")

    def test_metrics_command_json_to_file(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "metrics.json"
        trace_file = tmp_path / "run.jsonl"
        code, out = run_cli(
            capsys, "metrics", "radix", "--intensity", "0.2",
            "--format", "json", "--out", str(out_file),
            "--trace-out", str(trace_file), *FAST
        )
        assert code == 0
        data = json.loads(out_file.read_text())
        assert "repro_events_total" in data

        from repro.obs import read_trace, validate_trace

        validate_trace(read_trace(str(trace_file)))

    def test_timing_trace_and_metrics_out(self, capsys, tmp_path):
        trace_file = tmp_path / "timing.jsonl"
        prom_file = tmp_path / "timing.prom"
        code, out = run_cli(
            capsys, "timing", "radix", "--intensity", "0.2",
            "--trace-out", str(trace_file),
            "--metrics-out", str(prom_file), *FAST
        )
        assert code == 0
        assert "translation" in out
        assert prom_file.read_text().endswith("# EOF\n")

        from repro.obs import read_trace, validate_trace

        validate_trace(read_trace(str(trace_file)))

    def test_report_metrics_out(self, capsys, tmp_path):
        out_file = tmp_path / "report.md"
        metrics_file = tmp_path / "report.json"
        code, out = run_cli(
            capsys, "report", "ocean", "--out", str(out_file),
            "--no-figures", "--metrics-out", str(metrics_file), *FAST
        )
        assert code == 0
        assert "Telemetry" in out_file.read_text()
        import json

        data = json.loads(metrics_file.read_text())
        assert "repro_runner_jobs_total" in data
        assert "repro_phase_seconds" in data


class TestTraceAnalyticsCommands:
    @pytest.fixture()
    def recorded_run(self, capsys, tmp_path):
        """One tiny traced run: (trace path, metrics-JSON path)."""
        trace_file = tmp_path / "run.jsonl"
        metrics_file = tmp_path / "run.json"
        code, _ = run_cli(
            capsys, "metrics", "radix", "--intensity", "0.2",
            "--format", "json", "--out", str(metrics_file),
            "--trace-out", str(trace_file), *FAST
        )
        assert code == 0
        return trace_file, metrics_file

    def test_trace_validate_ok(self, capsys, recorded_run):
        trace_file, _ = recorded_run
        code, out = run_cli(capsys, "trace-validate", str(trace_file))
        assert code == 0
        assert "ok" in out and "spans=" in out

    def test_trace_validate_rejects_foreign_vocabulary(self, capsys, recorded_run):
        trace_file, _ = recorded_run
        with open(trace_file, "a") as handle:
            handle.write('{"kind": "event", "name": "tlb_hit", "t": 1, '
                         '"span": null, "node": 0}\n')
        code = main(["trace-validate", str(trace_file)])
        captured = capsys.readouterr()
        assert code == 1
        assert "INVALID" in captured.err

    def test_trace_profile_renders_attribution(self, capsys, recorded_run):
        trace_file, _ = recorded_run
        code, out = run_cli(capsys, "trace-profile", str(trace_file))
        assert code == 0
        assert "cost attribution" in out
        assert "translation (dlb miss handling)" in out
        assert "run" in out  # span tree root

    def test_trace_profile_reconciles_exactly(self, capsys, recorded_run):
        trace_file, metrics_file = recorded_run
        code, out = run_cli(
            capsys, "trace-profile", str(trace_file),
            "--metrics", str(metrics_file), "--no-tree",
        )
        assert code == 0
        assert "FAIL" not in out
        assert "reconciliation" in out

    def test_trace_profile_flags_mismatched_metrics(self, capsys, recorded_run, tmp_path):
        trace_file, metrics_file = recorded_run
        data = json.loads(metrics_file.read_text())
        for sample in data["repro_node_refs_total"]["samples"]:
            sample["value"] += 1
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(data))
        code = main([
            "trace-profile", str(trace_file), "--metrics", str(bad), "--no-tree",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.out
        assert "reconciliation FAILED" in captured.err

    def test_trace_profile_json_output(self, capsys, recorded_run):
        trace_file, metrics_file = recorded_run
        code, out = run_cli(
            capsys, "trace-profile", str(trace_file),
            "--metrics", str(metrics_file), "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["attribution"]["categories"]["stall_total"] > 0
        assert all(row["ok"] for row in payload["reconciliation"])
        assert payload["profile"]["tree"][0]["name"] == "run"


class TestHistoryCommand:
    def bench_payload(self, rate=70000.0):
        return {
            "version": "1.4.0",
            "smoke": False,
            "cpu_count": 2,
            "params": {"nodes": 8, "page_size": 512},
            "serial": {"timing": {"refs_per_sec": rate}},
            "tracing": {"enabled_slowdown": 3.0,
                        "disabled_refs_per_sec": rate * 1.1},
        }

    def record(self, capsys, tmp_path, rate):
        payload_file = tmp_path / "bench.json"
        payload_file.write_text(json.dumps(self.bench_payload(rate)))
        return run_cli(
            capsys, "history", "record-bench", str(payload_file),
            "--history-dir", str(tmp_path / "hist"),
        )

    def test_record_then_list(self, capsys, tmp_path):
        code, out = self.record(capsys, tmp_path, 70000.0)
        assert code == 0 and "recorded" in out
        code, out = run_cli(
            capsys, "history", "list", "--history-dir", str(tmp_path / "hist")
        )
        assert code == 0
        assert "timing_refs_per_sec=70000" in out

    def test_check_passes_on_stable_trajectory(self, capsys, tmp_path):
        for rate in (70000.0, 70500.0, 69800.0):
            self.record(capsys, tmp_path, rate)
        code, out = run_cli(
            capsys, "history", "check", "--history-dir", str(tmp_path / "hist")
        )
        assert code == 0
        assert "REGRESSION" not in out

    def test_check_flags_injected_drop(self, capsys, tmp_path):
        """The acceptance scenario: a 20% refs/sec drop exits non-zero."""
        for rate in (70000.0, 70500.0, 69800.0, 70200.0):
            self.record(capsys, tmp_path, rate)
        self.record(capsys, tmp_path, 70000.0 * 0.8)
        code, out = run_cli(
            capsys, "history", "check", "--history-dir", str(tmp_path / "hist")
        )
        assert code == 1
        assert "REGRESSION" in out
        assert "timing_refs_per_sec" in out

    def test_empty_store(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "history", "list", "--history-dir", str(tmp_path / "hist")
        )
        assert code == 0 and "no history" in out

    def test_record_bench_requires_payload(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["history", "record-bench",
                  "--history-dir", str(tmp_path / "hist")])


class TestStatusCommand:
    def test_status_of_finished_run(self, capsys, tmp_path):
        from repro.common.params import MachineParams
        from repro.runner import BatchRunner, JobSpec
        from repro.core.schemes import Scheme

        params = MachineParams.scaled_down(
            factor=256, nodes=2, page_size=256
        ).replace(seed=1998)
        spec = JobSpec.timing(
            params, Scheme.V_COMA, "radix", 8, max_refs_per_node=300,
            overrides={"intensity": 0.2},
        )
        runner = BatchRunner(jobs=1, manifest_dir=tmp_path / "runs")
        (job,) = runner.run([spec])
        assert job.ok

        code, out = run_cli(
            capsys, "status", runner.run_id, "--cache-dir", str(tmp_path)
        )
        assert code == 0
        assert "1/1 jobs (100%)" in out
        assert "1 ok, 0 failed, 0 running" in out

        code, out = run_cli(capsys, "status", "--cache-dir", str(tmp_path))
        assert code == 0
        assert runner.run_id in out

    def test_status_shows_running_job(self, capsys, tmp_path):
        from repro.common.params import MachineParams
        from repro.runner import JobSpec, RunManifest
        from repro.core.schemes import Scheme

        params = MachineParams.scaled_down(factor=256, nodes=2, page_size=256)
        spec = JobSpec.timing(params, Scheme.V_COMA, "radix", 8)
        manifest = RunManifest.create(tmp_path / "runs", total=3, run_id="run-x")
        manifest.record_heartbeat(spec, attempt=2, worker=0, workers=2)
        manifest.close()

        code, out = run_cli(
            capsys, "status", "run-x", "--cache-dir", str(tmp_path)
        )
        assert code == 0
        assert "0 ok, 0 failed, 1 running, 2 pending" in out
        assert "attempt 2, worker 0" in out

    def test_status_unknown_run(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="unknown run id"):
            main(["status", "nope", "--cache-dir", str(tmp_path)])

    def test_status_no_runs(self, capsys, tmp_path):
        code, out = run_cli(capsys, "status", "--cache-dir", str(tmp_path))
        assert code == 0 and "no runs" in out


class TestDoctor:
    def test_reports_resolved_ladder(self, capsys):
        code, out = run_cli(capsys, "doctor")
        assert code == 0
        assert "degradation ladder" in out
        assert "compiled" in out and "scalar" in out
        assert "<- active" in out

    def test_json_output(self, capsys):
        code, out = run_cli(capsys, "doctor", "--json")
        assert code == 0
        tiers = json.loads(out)
        assert [tier["tier"] for tier in tiers] == ["compiled", "numpy", "scalar"]
        assert all({"healthy", "detail"} <= set(tier) for tier in tiers)

    def test_red_when_only_last_resort(self, capsys, monkeypatch):
        from repro.core.replay import NO_NUMPY_ENV
        from repro.core.timing_kernels import NO_NUMBA_ENV

        monkeypatch.setenv(NO_NUMBA_ENV, "1")
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        code, out = run_cli(capsys, "doctor")
        assert code == 1
        assert "scalar" in out


class TestFuzzCommand:
    @pytest.fixture()
    def one_case_corpus(self, tmp_path):
        from repro.fuzz import FuzzCase
        from repro.fuzz.harness import save_case

        case = FuzzCase(
            factor=64, nodes=2, page_size=256, scheme="V-COMA", entries=8,
            organization="fa",
            workload={"kind": "named", "name": "radix", "intensity": 0.2},
            max_refs_per_node=100,
        )
        save_case(case, tmp_path)
        return tmp_path

    def test_replay_only_green_corpus(self, capsys, one_case_corpus):
        code, out = run_cli(
            capsys, "fuzz", "--replay-only", "--corpus", str(one_case_corpus)
        )
        assert code == 0
        assert "replay ok " in out
        assert "corpus: 1/1 cases replayed clean" in out

    def test_replay_only_flags_corrupt_corpus(self, capsys, tmp_path):
        (tmp_path / "case-junk.json").write_text('{"format": 1}')
        code, out = run_cli(
            capsys, "fuzz", "--replay-only", "--corpus", str(tmp_path)
        )
        assert code == 1
        assert "replay FAIL" in out

    def test_generative_smoke(self, capsys, one_case_corpus):
        code, out = run_cli(
            capsys, "fuzz", "--cases", "5", "--seed", "11",
            "--corpus", str(one_case_corpus), "--skip-replay",
        )
        assert code == 0
        assert "no divergence" in out
