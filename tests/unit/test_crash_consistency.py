"""Crash-consistent concurrent caches: the tentpole acceptance suite.

A writer killed at ANY instant — simulated deterministically with the
``REPRO_CRASH_WRITE`` hook (half payload, hard exit with the fault
harness's ``CRASH_EXIT_CODE``) or with a real ``SIGKILL`` mid-loop —
must never cost a committed entry.  Recovery on the next open
quarantines the partial temp file (kept as evidence under
``quarantine/``, never silently deleted), and two concurrent writer
processes sharing one store root produce no corruption.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import MachineParams
from repro.core.schemes import Scheme
from repro.runner import JobSpec, ResultCache, TraceStore
from repro.runner.faults import CRASH_EXIT_CODE
from repro.runner.locking import CRASH_WRITE_ENV
from repro.runner.summary import RunSummary

SRC = str(Path(__file__).resolve().parents[2] / "src")


def tiny_params(seed=1998):
    return MachineParams.scaled_down(factor=256, nodes=2, page_size=256, seed=seed)


def timing_spec(seed=1998, intensity=0.2):
    return JobSpec.timing(
        tiny_params(seed), Scheme.V_COMA, "fft", 8,
        max_refs_per_node=100, overrides={"intensity": intensity},
    )


def canned_summary(total_time=123):
    from repro.common.stats import TimeBreakdown

    return RunSummary(
        scheme=Scheme.V_COMA,
        workload_name="fft",
        total_time=total_time,
        refs_per_node=[50, 50],
        barriers=0,
        breakdowns=[TimeBreakdown(), TimeBreakdown()],
        counters={},
    )


def run_child(script: str, **env_overrides) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True
    )


def child_put_script(root, seed):
    return (
        "import sys\n"
        f"sys.path.insert(0, {SRC!r})\n"
        f"sys.path.insert(0, {str(Path(__file__).parent)!r})\n"
        "from test_crash_consistency import canned_summary, timing_spec\n"
        "from repro.runner import ResultCache\n"
        f"cache = ResultCache({str(root)!r})\n"
        f"cache.put(timing_spec(seed={seed}), canned_summary())\n"
        "print('landed')\n"
    )


class TestResultCacheCrash:
    def test_crash_mid_put_loses_nothing_committed(self, tmp_path):
        root = tmp_path / "cache"
        cache = ResultCache(root)
        committed = timing_spec(seed=1)
        cache.put(committed, canned_summary(111))

        # A second writer crashes mid-put of a DIFFERENT entry.
        proc = run_child(
            child_put_script(root, seed=2), **{CRASH_WRITE_ENV: ".json"}
        )
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        partials = list(root.glob("*/.*.tmp"))
        assert len(partials) == 1  # the torn write is on disk

        # A fresh open recovers: partial quarantined, committed intact.
        fresh = ResultCache(root)
        restored = fresh.get(committed)
        assert restored is not None and restored.total_time == 111
        assert fresh.quarantined == 1
        assert list(root.glob("*/.*.tmp")) == []
        assert len(list((root / "quarantine").iterdir())) == 1

    def test_corrupt_entry_quarantined_not_deleted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = timing_spec(seed=3)
        path = cache.put(spec, canned_summary())
        path.write_text("{torn")
        assert cache.get(spec) is None
        assert not path.exists()
        # Evidence survives in quarantine/.
        (evidence,) = list((tmp_path / "cache" / "quarantine").iterdir())
        assert evidence.read_text() == "{torn"
        assert cache.quarantined == 1

    def test_sigkill_mid_write_loop(self, tmp_path):
        """A writer SIGKILLed at a random instant: every entry that IS
        on disk under its final name parses clean."""
        root = tmp_path / "cache"
        script = (
            "import sys\n"
            f"sys.path.insert(0, {SRC!r})\n"
            f"sys.path.insert(0, {str(Path(__file__).parent)!r})\n"
            "from test_crash_consistency import canned_summary, timing_spec\n"
            "from repro.runner import ResultCache\n"
            f"cache = ResultCache({str(root)!r})\n"
            "print('ready', flush=True)\n"
            "seed = 10\n"
            "while True:\n"
            "    cache.put(timing_spec(seed=seed), canned_summary(seed))\n"
            "    seed += 1\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            env=env, stdout=subprocess.PIPE, text=True,
        )
        assert proc.stdout.readline().strip() == "ready"
        time.sleep(0.5)  # let it land a few entries
        proc.send_signal(signal.SIGKILL)
        proc.wait()

        fresh = ResultCache(root)
        fresh.recover()
        entries = list(root.glob("*/*.json"))
        assert entries, "writer landed nothing in 0.5s"
        for entry in entries:
            payload = json.loads(entry.read_text())  # parses or the test fails
            assert payload["format"] == 1
        assert list(root.glob("*/.*.tmp")) == []

    def test_two_concurrent_writers_no_corruption(self, tmp_path):
        root = tmp_path / "cache"
        procs = []
        for base in (100, 200):
            script = (
                "import sys\n"
                f"sys.path.insert(0, {SRC!r})\n"
                f"sys.path.insert(0, {str(Path(__file__).parent)!r})\n"
                "from test_crash_consistency import canned_summary, timing_spec\n"
                "from repro.runner import ResultCache\n"
                # A tight size cap forces concurrent LRU eviction sweeps
                # through the cross-process store lock.
                f"cache = ResultCache({str(root)!r}, max_bytes=256 * 1024)\n"
                f"for seed in range({base}, {base + 25}):\n"
                "    cache.put(timing_spec(seed=seed), canned_summary(seed))\n"
                "print('done')\n"
            )
            env = dict(os.environ)
            env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
            procs.append(subprocess.Popen(
                [sys.executable, "-c", script],
                env=env, stdout=subprocess.PIPE, text=True,
            ))
        for proc in procs:
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0
            assert "done" in out
        entries = list(root.glob("*/*.json"))
        assert entries
        for entry in entries:  # no torn writes anywhere
            json.loads(entry.read_text())
        assert list(root.glob("*/.*.tmp")) == []


class TestTraceStoreCrash:
    @pytest.fixture()
    def sweep_spec(self):
        return JobSpec.sweep(
            tiny_params(), "radix", sizes=(8,),
            max_refs_per_node=200, overrides={"intensity": 0.2},
        )

    def test_crash_mid_trace_put_then_recover(self, tmp_path, sweep_spec):
        from repro.system.taptrace import capture_tap_traces

        root = tmp_path / "traces"
        store = TraceStore(root)
        traces = capture_tap_traces(
            tiny_params(), sweep_spec.build_workload(), max_refs_per_node=200
        )
        store.put(sweep_spec, traces)

        # Crash a child mid-put of the same trace file (overwrite).
        script = (
            "import sys\n"
            f"sys.path.insert(0, {SRC!r})\n"
            f"sys.path.insert(0, {str(Path(__file__).parent)!r})\n"
            "from test_crash_consistency import tiny_params\n"
            "from repro.runner import JobSpec, TraceStore\n"
            "from repro.system.taptrace import capture_tap_traces\n"
            "params = tiny_params()\n"
            "spec = JobSpec.sweep(params, 'radix', sizes=(8,), "
            "max_refs_per_node=200, overrides={'intensity': 0.2})\n"
            f"store = TraceStore({str(root)!r})\n"
            "traces = capture_tap_traces(params, spec.build_workload(), "
            "max_refs_per_node=200)\n"
            "store.put(spec, traces)\n"
        )
        proc = run_child(script, **{CRASH_WRITE_ENV: ".trace"})
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr

        # The committed trace is untouched and loads clean.
        fresh = TraceStore(root)
        loaded = fresh.get(sweep_spec)
        assert loaded is not None
        assert loaded.to_bytes() == traces.to_bytes()
        assert fresh.quarantined == 1  # the orphaned temp
        assert list(root.glob("*/.*.tmp")) == []

    def test_corrupt_trace_quarantined_with_evidence(self, tmp_path, sweep_spec):
        from repro.system.taptrace import capture_tap_traces

        root = tmp_path / "traces"
        store = TraceStore(root)
        traces = capture_tap_traces(
            tiny_params(), sweep_spec.build_workload(), max_refs_per_node=200
        )
        path = store.put(sweep_spec, traces)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # truncate

        with pytest.warns(RuntimeWarning, match="corrupt tap trace"):
            assert store.get(sweep_spec) is None
        assert store.corrupt_dropped == 1
        assert store.quarantined == 1
        assert not path.exists()
        (evidence,) = list((root / "quarantine").iterdir())
        assert evidence.read_bytes() == blob[: len(blob) // 2]
