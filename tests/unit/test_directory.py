"""Directory storage and DirectoryEntry invariants."""

import pytest

from repro.coma.directory import Directory
from repro.coma.states import DirectoryEntry
from repro.common.errors import ProtocolError


class TestDirectoryEntry:
    def test_holders_includes_owner_and_sharers(self):
        e = DirectoryEntry(owner=1, sharers={2, 3})
        assert e.holders == {1, 2, 3}

    def test_holders_without_owner(self):
        e = DirectoryEntry(sharers={2})
        assert e.holders == {2}

    def test_is_exclusive(self):
        assert DirectoryEntry(owner=1).is_exclusive
        assert not DirectoryEntry(owner=1, sharers={2}).is_exclusive
        assert not DirectoryEntry().is_exclusive

    def test_check_rejects_owner_in_sharers(self):
        e = DirectoryEntry(owner=1, sharers={1})
        with pytest.raises(AssertionError):
            e.check()


class TestDirectory:
    def test_entry_created_on_first_touch(self):
        d = Directory(0)
        e = d.entry(0x100)
        assert e.owner is None and not e.sharers
        assert len(d) == 1
        assert d.lookups == 1

    def test_entry_persistent(self):
        d = Directory(0)
        d.entry(0x100).owner = 3
        assert d.entry(0x100).owner == 3

    def test_peek_does_not_create(self):
        d = Directory(0)
        assert d.peek(0x100) is None
        assert len(d) == 0

    def test_require_owner(self):
        d = Directory(0)
        d.entry(0x100).owner = 2
        assert d.require_owner(0x100) == 2

    def test_require_owner_missing_raises(self):
        d = Directory(0)
        with pytest.raises(ProtocolError):
            d.require_owner(0x100)

    def test_drop_sharer(self):
        d = Directory(0)
        d.entry(0x100).sharers.update({1, 2})
        d.drop_sharer(0x100, 1)
        assert d.entry(0x100).sharers == {2}

    def test_drop_sharer_unknown_block_noop(self):
        Directory(0).drop_sharer(0x500, 1)  # must not raise

    def test_forget(self):
        d = Directory(0)
        d.entry(0x100)
        d.forget(0x100)
        assert d.peek(0x100) is None

    def test_blocks_iteration(self):
        d = Directory(0)
        d.entry(0x100)
        d.entry(0x200)
        assert {b for b, _ in d.blocks()} == {0x100, 0x200}
