"""DirectoryAddressSpace allocation/reclaim."""

import pytest

from repro import CapacityError, DirectoryAddressSpace
from repro.core.directory_space import DirectoryPageHandle


class TestAllocation:
    def test_pages_are_disjoint_and_dense(self):
        space = DirectoryAddressSpace(entries_per_page=16)
        a = space.allocate()
        b = space.allocate()
        assert a.base == 0 and b.base == 16
        assert a.entries == 16

    def test_entry_addresses(self):
        space = DirectoryAddressSpace(entries_per_page=8)
        page = space.allocate()
        assert page.entry_address(0) == page.base
        assert page.entry_address(7) == page.base + 7
        with pytest.raises(IndexError):
            page.entry_address(8)

    def test_reclaim_reuses_space(self):
        space = DirectoryAddressSpace(entries_per_page=4)
        a = space.allocate()
        space.allocate()
        space.reclaim(a)
        c = space.allocate()
        assert c.base == a.base  # reclaimed space reused first
        assert space.allocated_pages == 2

    def test_reclaim_unknown_raises(self):
        space = DirectoryAddressSpace(entries_per_page=4)
        with pytest.raises(KeyError):
            space.reclaim(DirectoryPageHandle(base=123, entries=4))

    def test_capacity_enforced(self):
        space = DirectoryAddressSpace(entries_per_page=4, capacity_pages=2)
        space.allocate()
        space.allocate()
        with pytest.raises(CapacityError):
            space.allocate()

    def test_capacity_freed_by_reclaim(self):
        space = DirectoryAddressSpace(entries_per_page=4, capacity_pages=1)
        page = space.allocate()
        space.reclaim(page)
        space.allocate()  # must not raise

    def test_is_allocated(self):
        space = DirectoryAddressSpace(entries_per_page=4)
        page = space.allocate()
        assert space.is_allocated(page.base)
        space.reclaim(page)
        assert not space.is_allocated(page.base)

    def test_invalid_entries_per_page(self):
        with pytest.raises(ValueError):
            DirectoryAddressSpace(entries_per_page=0)

    def test_len_tracks_allocations(self):
        space = DirectoryAddressSpace(entries_per_page=4)
        assert len(space) == 0
        space.allocate()
        assert len(space) == 1
