"""DirectoryLookasideBuffer: translation caching + R/M bits."""

import pytest

from repro import TranslationFault
from repro.core.dlb import DirectoryLookasideBuffer


def make_dlb(entries=4, table=None):
    table = table if table is not None else {}

    def resolver(vpn):
        if vpn not in table:
            raise TranslationFault(f"vpn {vpn}")
        return table[vpn]

    return DirectoryLookasideBuffer(entries, resolver), table


class TestTranslate:
    def test_miss_then_hit(self):
        dlb, table = make_dlb()
        table[7] = 700
        base, hit = dlb.translate(7)
        assert (base, hit) == (700, False)
        base, hit = dlb.translate(7)
        assert (base, hit) == (700, True)
        assert dlb.misses == 1 and dlb.hits == 1

    def test_unmapped_page_faults(self):
        dlb, _ = make_dlb()
        with pytest.raises(TranslationFault):
            dlb.translate(99)

    def test_eviction_reresolves(self):
        dlb, table = make_dlb(entries=2)
        table.update({1: 10, 2: 20, 3: 30})
        dlb.translate(1)
        dlb.translate(2)
        dlb.translate(3)  # evicts 1 or 2
        survivors = [v for v in (1, 2) if dlb.contains(v)]
        assert len(survivors) == 1
        # Payload stays consistent for whatever is resident.
        base, hit = dlb.translate(survivors[0])
        assert hit is True and base == table[survivors[0]]

    def test_payload_garbage_collected(self):
        dlb, table = make_dlb(entries=2)
        for vpn in range(10):
            table[vpn] = vpn * 10
            dlb.translate(vpn)
        assert len(dlb._payload) <= 2

    def test_miss_rate(self):
        dlb, table = make_dlb()
        table[1] = 1
        dlb.translate(1)
        dlb.translate(1)
        assert dlb.miss_rate == pytest.approx(0.5)


class TestMetadata:
    def test_reference_bit_set_on_translate(self):
        dlb, table = make_dlb()
        table[5] = 50
        assert not dlb.referenced(5)
        dlb.translate(5)
        assert dlb.referenced(5)

    def test_modify_bit_only_for_ownership(self):
        dlb, table = make_dlb()
        table[5] = 50
        dlb.translate(5)
        assert not dlb.modified(5)
        dlb.translate(5, for_ownership=True)
        assert dlb.modified(5)

    def test_clear_reference_bits(self):
        dlb, table = make_dlb()
        table[5] = 50
        dlb.translate(5, for_ownership=True)
        dlb.clear_reference_bits()
        assert not dlb.referenced(5)
        assert dlb.modified(5)  # modify bits survive the periodic reset


class TestInvalidation:
    def test_invalidate_removes_payload(self):
        dlb, table = make_dlb()
        table[3] = 30
        dlb.translate(3)
        assert dlb.invalidate(3) is True
        assert not dlb.contains(3)
        # Next translate walks the table again.
        _, hit = dlb.translate(3)
        assert hit is False

    def test_flush(self):
        dlb, table = make_dlb()
        table.update({1: 10, 2: 20})
        dlb.translate(1)
        dlb.translate(2)
        dlb.flush()
        assert not dlb.contains(1) and not dlb.contains(2)

    def test_reset_stats(self):
        dlb, table = make_dlb()
        table[1] = 10
        dlb.translate(1)
        dlb.reset_stats()
        assert dlb.accesses == 0 and dlb.misses == 0
