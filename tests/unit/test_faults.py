"""Unit tests for the chaos harness (FaultPlan) and failure taxonomy."""

import pickle

import pytest

from repro import MachineParams, Scheme
from repro.common.errors import (
    CapacityError,
    ConfigurationError,
    ProtocolError,
    TranslationFault,
    is_transient,
)
from repro.runner import BatchRunner, FaultPlan, JobSpec, ResultCache, TraceStore
from repro.runner.faults import (
    CRASH_EXIT_CODE,
    Fault,
    _flip_bytes,
    resolve_exception,
)
from repro.system.taptrace import TraceError


@pytest.fixture
def params():
    return MachineParams.scaled_down(factor=256, nodes=2, page_size=256)


def timing_spec(params, **overrides):
    kwargs = dict(max_refs_per_node=300, overrides={"intensity": 0.2})
    kwargs.update(overrides)
    return JobSpec.timing(params, Scheme.V_COMA, "fft", 8, **kwargs)


def sweep_spec(params, **overrides):
    from repro.core.tlb import Organization

    kwargs = dict(
        sizes=(8, 32),
        orgs=(Organization.FULLY_ASSOCIATIVE,),
        max_refs_per_node=300,
        overrides={"intensity": 0.2},
    )
    kwargs.update(overrides)
    return JobSpec.sweep(params, "radix", **kwargs)


# ----------------------------------------------------------------------
# failure taxonomy
# ----------------------------------------------------------------------
class TestTaxonomy:
    def test_transient_classes(self):
        assert is_transient(OSError("disk on fire"))
        assert is_transient(TimeoutError("slow NFS"))  # an OSError
        assert is_transient(TraceError("corrupt bytes"))

    def test_deterministic_classes(self):
        for exc in (
            ConfigurationError("bad geometry"),
            ProtocolError("two exclusive copies"),
            TranslationFault("no PTE"),
            CapacityError("global set full"),
            ValueError("nonsense"),
            KeyError("missing"),
        ):
            assert not is_transient(exc)

    def test_resolve_exception_covers_library_builtin_and_trace(self):
        assert resolve_exception("ProtocolError") is ProtocolError
        assert resolve_exception("OSError") is OSError
        assert resolve_exception("TraceError") is TraceError
        with pytest.raises(ValueError):
            resolve_exception("NoSuchException")
        with pytest.raises(ValueError):
            resolve_exception("str")  # a type, but not an exception


# ----------------------------------------------------------------------
# FaultPlan mechanics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_fires_on_configured_attempts_only(self):
        fault = Fault("transient", times=2)
        assert fault.fires(1) and fault.fires(2) and not fault.fires(3)
        always = Fault("transient", times=None)
        assert always.fires(99)

    def test_rejects_unknown_kind_and_exception(self):
        with pytest.raises(ValueError):
            Fault("explode")
        with pytest.raises(ValueError):
            Fault("raise", exc="NoSuchError")

    def test_plan_is_picklable(self):
        plan = (
            FaultPlan()
            .crash(0)
            .hang(1, seconds=5.0)
            .transient(2, times=3)
            .raising(3, "ProtocolError", "bug")
            .corrupt_cache(4)
            .corrupt_trace(5)
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.faults.keys() == plan.faults.keys()
        assert clone.faults[3][0].exc == "ProtocolError"

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan().transient(0)

    def test_apply_worker_raises_configured_exceptions(self):
        plan = FaultPlan().transient(0, times=1).raising(1, "ProtocolError", "bug")
        plan.arm()
        with pytest.raises(OSError):
            plan.apply_worker(0, attempt=1)
        plan.apply_worker(0, attempt=2)  # past its budget: no-op
        with pytest.raises(ProtocolError, match="bug"):
            plan.apply_worker(1, attempt=7)
        plan.apply_worker(2, attempt=1)  # unconfigured index: no-op

    def test_crash_refused_in_parent_process(self):
        plan = FaultPlan().crash(0)
        plan.arm()
        with pytest.raises(RuntimeError, match="supervised"):
            plan.apply_worker(0, attempt=1)
        assert CRASH_EXIT_CODE != 0

    def test_flip_bytes_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(bytes(range(256)))
        b.write_bytes(bytes(range(256)))
        assert _flip_bytes(a, seed=7) and _flip_bytes(b, seed=7)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != bytes(range(256))
        assert not _flip_bytes(tmp_path / "missing", seed=7)


# ----------------------------------------------------------------------
# parent-side corruption faults, end to end through the runner
# ----------------------------------------------------------------------
class TestCorruptionInjection:
    def test_corrupt_cache_entry_is_resimulated(self, tmp_path, params):
        spec = timing_spec(params)
        cache = ResultCache(tmp_path)
        (clean,) = BatchRunner(jobs=1, cache=cache).run([spec])
        assert cache.contains(spec)

        plan = FaultPlan().corrupt_cache(0)
        runner = BatchRunner(jobs=1, cache=cache, fault_plan=plan)
        (job,) = runner.run([spec])
        # The flipped entry must read as a miss, never a wrong answer.
        assert not job.from_cache
        assert runner.simulations_run == 1
        assert job.summary.to_dict() == clean.summary.to_dict()

    def test_corrupt_trace_is_quarantined_and_rerecorded(self, tmp_path, params):
        spec = sweep_spec(params)
        store = TraceStore(root=tmp_path)
        (clean,) = BatchRunner(jobs=1, trace_store=store).run([spec])
        assert len(store) == 1

        plan = FaultPlan().corrupt_trace(0)
        runner = BatchRunner(jobs=1, trace_store=store, fault_plan=plan)
        with pytest.warns(RuntimeWarning, match="corrupt tap trace"):
            (job,) = runner.run([spec])
        assert store.corrupt_dropped == 1
        assert job.ok
        assert job.summary.to_dict() == clean.summary.to_dict()
        # The store healed itself: a fresh trace is back on disk.
        assert len(store) == 1
