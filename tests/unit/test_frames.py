"""Round-robin frame allocation and page coloring."""

import pytest

from repro import CapacityError, ConfigurationError
from repro.vm.frames import FrameAllocator


@pytest.fixture
def frames(small_layout, small_params):
    return FrameAllocator(small_layout, small_params.pages_per_am)


@pytest.fixture
def colored(small_layout, small_params):
    return FrameAllocator(small_layout, small_params.pages_per_am, coloring=True)


class TestRoundRobin:
    def test_sequential_pfns_cycle_homes(self, frames, small_layout):
        homes = [frames.home_of(frames.allocate(vpn)) for vpn in range(8)]
        assert homes == [i % small_layout.nodes for i in range(8)]

    def test_colors_cycle_uniformly(self, frames, small_layout):
        g = small_layout.global_page_sets
        colors = [frames.color_of(frames.allocate(vpn)) for vpn in range(2 * g)]
        assert colors == [i % g for i in range(2 * g)]

    def test_capacity(self, small_layout):
        tiny = FrameAllocator(small_layout, frames_per_node=small_layout.global_page_sets)
        for vpn in range(tiny.total_frames):
            tiny.allocate(vpn)
        with pytest.raises(CapacityError):
            tiny.allocate(9999)

    def test_free_and_reuse(self, frames):
        pfn = frames.allocate(1)
        frames.free(pfn)
        assert frames.allocate(2) == pfn

    def test_free_unallocated_raises(self, frames):
        with pytest.raises(KeyError):
            frames.free(12345)

    def test_vpn_tracking(self, frames):
        pfn = frames.allocate(0x42)
        assert frames.vpn_of(pfn) == 0x42

    def test_physical_address(self, frames, small_layout):
        pfn = frames.allocate(1)
        addr = frames.physical_address(pfn, 17)
        assert addr == (pfn << small_layout.page_bits) | 17


class TestColoring:
    def test_color_matches_virtual(self, colored, small_layout):
        g = small_layout.global_page_sets
        for vpn in (3, g + 3, 7):
            pfn = colored.allocate(vpn)
            assert colored.color_of(pfn) == vpn % g

    def test_explicit_color_override(self, colored, small_layout):
        pfn = colored.allocate(5, color=2)
        assert colored.color_of(pfn) == 2

    def test_bad_color_rejected(self, colored, small_layout):
        with pytest.raises(ConfigurationError):
            colored.allocate(1, color=small_layout.global_page_sets)

    def test_per_color_capacity(self, small_layout):
        alloc = FrameAllocator(
            small_layout, frames_per_node=small_layout.global_page_sets, coloring=True
        )
        per_color = alloc.frames_per_color
        for i in range(per_color):
            alloc.allocate(i * small_layout.global_page_sets)  # all color 0
        with pytest.raises(CapacityError):
            alloc.allocate(per_color * small_layout.global_page_sets)

    def test_colored_free_reuses_same_color(self, colored, small_layout):
        g = small_layout.global_page_sets
        pfn = colored.allocate(3)
        colored.free(pfn)
        again = colored.allocate(g + 3)  # same color
        assert again == pfn

    def test_home_forced_when_colors_cover_nodes(self, colored, small_layout):
        # G >= P: home is the color's low node bits.
        g = small_layout.global_page_sets
        assert g >= small_layout.nodes
        vpn = 5
        pfn = colored.allocate(vpn)
        assert colored.home_of(pfn) == vpn % small_layout.nodes


class TestValidation:
    def test_frames_must_be_positive(self, small_layout):
        with pytest.raises(ConfigurationError):
            FrameAllocator(small_layout, 0)

    def test_frames_must_cover_colors(self, small_layout):
        with pytest.raises(ConfigurationError):
            FrameAllocator(small_layout, small_layout.global_page_sets + 1)
