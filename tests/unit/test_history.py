"""Run-history store and rolling-median regression detector."""

import json
from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.history import (
    HistoryEntry,
    RunHistory,
    config_key,
    detect_regression,
    entry_from_bench,
    metric_direction,
)

BENCH_BASELINE = Path(__file__).resolve().parents[2] / "BENCH_throughput.json"


class TestDetector:
    def test_improving_trajectory_passes(self):
        result = detect_regression([100, 105, 110, 120, 130], direction="higher")
        assert result["ok"]
        assert result["baseline_median"] == 107.5
        assert result["latest"] == 130

    def test_flat_trajectory_passes(self):
        result = detect_regression([100.0] * 6, direction="higher")
        assert result["ok"] and result["ratio"] == 1.0

    def test_regressing_trajectory_is_flagged(self):
        # A 20% refs/sec drop against a stable baseline must be caught.
        result = detect_regression(
            [100, 101, 99, 100, 100, 80], tolerance=0.1, direction="higher"
        )
        assert not result["ok"]
        assert result["ratio"] == 0.8
        assert result["baseline_median"] == 100

    def test_drop_within_tolerance_passes(self):
        result = detect_regression([100, 100, 95], tolerance=0.1, direction="higher")
        assert result["ok"]

    def test_lower_is_better_flags_a_rise(self):
        # A slowdown metric rising 20% is the regression direction.
        result = detect_regression(
            [3.0, 3.1, 2.9, 3.0, 3.6], tolerance=0.1, direction="lower"
        )
        assert not result["ok"]

    def test_single_noisy_baseline_run_is_harmless(self):
        # The rolling *median* shrugs off one outlier in the window.
        result = detect_regression(
            [100, 100, 5, 100, 100, 98], tolerance=0.1, direction="higher"
        )
        assert result["ok"]
        assert result["baseline_median"] == 100

    def test_insufficient_history_passes(self):
        result = detect_regression([42.0])
        assert result["ok"] and result["reason"] == "insufficient history"

    def test_window_bounds_the_baseline(self):
        # Only the 3 values preceding the latest may form the baseline.
        result = detect_regression([1, 1, 200, 200, 200, 180], window=3)
        assert result["window"] == 3 and result["baseline_median"] == 200

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            detect_regression([1, 2], direction="sideways")
        with pytest.raises(ConfigurationError):
            detect_regression([1, 2], tolerance=1.5)

    def test_metric_direction_heuristic(self):
        assert metric_direction("timing_refs_per_sec") == "higher"
        assert metric_direction("tracing_enabled_slowdown") == "lower"
        assert metric_direction("translation_miss_rate") == "lower"
        assert metric_direction("read_latency_p95") == "lower"
        assert metric_direction("wall_seconds") == "lower"


class TestRunHistory:
    def entry(self, key="k" * 16, **metrics):
        return HistoryEntry(key, metrics or {"refs_per_sec": 100.0})

    def test_append_and_read_back(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append(self.entry(refs_per_sec=100.0))
        history.append(self.entry(refs_per_sec=110.0))
        entries = history.entries()
        assert [e.metrics["refs_per_sec"] for e in entries] == [100.0, 110.0]
        assert history.keys() == ["k" * 16]
        assert history.latest("k" * 16).metrics["refs_per_sec"] == 110.0

    def test_series_skips_entries_missing_the_metric(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append(self.entry(a=1.0))
        history.append(self.entry(b=2.0))
        history.append(self.entry(a=3.0))
        assert history.series("k" * 16, "a") == [1.0, 3.0]

    def test_torn_line_is_skipped(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append(self.entry())
        with open(history.path, "a") as handle:
            handle.write('{"key": "trunc')  # hard-killed writer
        history.append(self.entry())
        assert len(history.entries()) == 2

    def test_check_flags_injected_refs_per_sec_drop(self, tmp_path):
        """End-to-end acceptance: five healthy runs, then one 20% slower
        — the check must flag exactly the refs/sec regression."""
        history = RunHistory(tmp_path)
        for rate in (100.0, 102.0, 99.0, 101.0, 100.0):
            history.append(self.entry(refs_per_sec=rate, miss_rate=0.05))
        history.append(self.entry(refs_per_sec=80.0, miss_rate=0.05))
        results = {row["metric"]: row for row in history.check("k" * 16)}
        assert not results["refs_per_sec"]["ok"]
        assert results["miss_rate"]["ok"]

    def test_compare_against_baseline_entry(self, tmp_path):
        history = RunHistory(tmp_path)
        baseline = self.entry(refs_per_sec=100.0, slowdown=3.0)
        history.append(self.entry(refs_per_sec=95.0, slowdown=4.0))
        rows = {r["metric"]: r for r in history.compare(baseline)}
        assert rows["refs_per_sec"]["ok"]  # -5% within the 10% tolerance
        assert not rows["slowdown"]["ok"]  # +33% on a lower-is-better metric

    def test_keys_separate_configurations(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append(HistoryEntry("a" * 16, {"m": 1.0}))
        history.append(HistoryEntry("b" * 16, {"m": 2.0}))
        assert history.keys() == ["a" * 16, "b" * 16]
        assert history.series("a" * 16, "m") == [1.0]


class TestBenchEntries:
    def test_committed_baseline_forms_a_passing_trajectory(self, tmp_path):
        """Seeding the history with the committed bench payload and
        re-recording it must pass every regression check — the shipped
        baseline can never flag itself."""
        payload = json.loads(BENCH_BASELINE.read_text())
        history = RunHistory(tmp_path)
        entry = history.append(entry_from_bench(payload))
        history.append(entry_from_bench(payload))
        assert entry.metrics["timing_refs_per_sec"] > 0
        assert "tracing_enabled_slowdown" in entry.metrics
        assert all(row["ok"] for row in history.check(entry.key))

    def test_injected_drop_on_bench_trajectory_is_flagged(self, tmp_path):
        payload = json.loads(BENCH_BASELINE.read_text())
        history = RunHistory(tmp_path)
        for _ in range(3):
            history.append(entry_from_bench(payload))
        slow = json.loads(BENCH_BASELINE.read_text())
        slow["serial"]["timing"]["refs_per_sec"] *= 0.8  # inject a 20% drop
        entry = history.append(entry_from_bench(slow))
        results = {row["metric"]: row for row in history.check(entry.key)}
        assert not results["timing_refs_per_sec"]["ok"]

    def test_smoke_and_full_runs_never_cross_compare(self):
        payload = json.loads(BENCH_BASELINE.read_text())
        smoke = dict(payload, smoke=True)
        assert entry_from_bench(payload).key != entry_from_bench(smoke).key

    def test_config_key_is_stable_and_order_insensitive(self):
        assert config_key({"a": 1, "b": 2}) == config_key({"b": 2, "a": 1})
        assert len(config_key({"a": 1})) == 16
