"""Crossbar timing and message accounting."""

import pytest

from repro import MachineParams
from repro.interconnect import Crossbar, Message, MessageKind


@pytest.fixture
def xbar(small_params):
    return Crossbar(small_params)


class TestMessageKinds:
    def test_block_carriers(self):
        assert MessageKind.BLOCK_REPLY.carries_block
        assert MessageKind.INJECT.carries_block
        assert not MessageKind.READ_REQUEST.carries_block
        assert not MessageKind.ACK.carries_block

    def test_message_locality(self):
        assert Message(MessageKind.ACK, 1, 1, 0).is_local
        assert not Message(MessageKind.ACK, 1, 2, 0).is_local


class TestLatency:
    def test_request_and_block_costs(self, xbar, small_params):
        assert xbar.cycles_for(MessageKind.READ_REQUEST) == small_params.request_msg_cycles
        assert xbar.cycles_for(MessageKind.BLOCK_REPLY) == small_params.block_msg_cycles

    def test_paper_costs(self):
        xbar = Crossbar(MachineParams.paper_baseline())
        assert xbar.cycles_for(MessageKind.READ_REQUEST) == 16
        assert xbar.cycles_for(MessageKind.BLOCK_REPLY) == 272

    def test_local_transfer_free(self, xbar):
        assert xbar.transfer(MessageKind.READ_REQUEST, 2, 2, now=100) == 100
        assert xbar.counters["msg_local"] == 1

    def test_remote_transfer_charged(self, xbar, small_params):
        done = xbar.transfer(MessageKind.READ_REQUEST, 0, 1, now=100)
        assert done == 100 + small_params.request_msg_cycles
        assert xbar.counters["msg_remote"] == 1

    def test_per_kind_counting(self, xbar):
        xbar.transfer(MessageKind.INJECT, 0, 1, 0)
        xbar.transfer(MessageKind.INJECT, 0, 2, 0)
        assert xbar.counters["msg_inject"] == 2

    def test_traffic_bytes(self, xbar, small_params):
        xbar.transfer(MessageKind.READ_REQUEST, 0, 1, 0)
        xbar.transfer(MessageKind.BLOCK_REPLY, 1, 0, 0)
        expected = small_params.request_payload_bytes + (
            small_params.am_block + small_params.message_header_bytes
        )
        assert xbar.traffic_bytes() == expected

    def test_local_transfer_moves_no_bytes(self, xbar):
        xbar.transfer(MessageKind.BLOCK_REPLY, 1, 1, 0)
        assert xbar.traffic_bytes() == 0


class TestContention:
    def test_port_serialization(self, small_params):
        xbar = Crossbar(small_params, contention=True)
        cost = small_params.request_msg_cycles
        first = xbar.transfer(MessageKind.READ_REQUEST, 0, 3, now=0)
        second = xbar.transfer(MessageKind.READ_REQUEST, 1, 3, now=0)
        assert first == cost
        assert second == 2 * cost  # queued behind the first
        assert xbar.counters["contention_cycles"] == cost

    def test_distinct_ports_parallel(self, small_params):
        xbar = Crossbar(small_params, contention=True)
        cost = small_params.request_msg_cycles
        assert xbar.transfer(MessageKind.READ_REQUEST, 0, 2, now=0) == cost
        assert xbar.transfer(MessageKind.READ_REQUEST, 1, 3, now=0) == cost

    def test_no_contention_by_default(self, small_params):
        xbar = Crossbar(small_params)
        cost = small_params.request_msg_cycles
        assert xbar.transfer(MessageKind.READ_REQUEST, 0, 3, now=0) == cost
        assert xbar.transfer(MessageKind.READ_REQUEST, 1, 3, now=0) == cost
