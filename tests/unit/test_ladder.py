"""The supervised degradation ladder and fallback provenance.

Forcing any compiled-engine failure the oracle can recover from — an
injected C OOM, a build failure, ``REPRO_NO_NUMBA`` — must yield a
bit-identical scalar result with a structured ``fallback_reason``,
never a crash, and the reason must survive the whole provenance chain:
``RunResult`` → ``RunSummary`` → cache round trip → ``GridStats``.
Backend lifecycle hardening rides along: corrupted or stale cached
``.so`` files are quarantined and rebuilt, the load-time self-test
gates dlopen, and every degradation lands on the runtime metrics
registry exactly once (warn-once semantics).
"""

import os
import warnings

import pytest

from repro import MachineParams, Scheme, make_workload
from repro.analysis import run_timing
from repro.core import timing_kernels as tk
from repro.core.ladder import (
    FAULT_ENV,
    EngineDegraded,
    degradation_ladder,
    injected_fault,
    only_last_resort,
    render_ladder,
    resolved_tier,
)
from repro.obs.runtime import (
    counter_value,
    fallback_counts,
    record_fallback,
    reset_runtime_metrics,
    runtime_registry,
)
from repro.runner import BatchRunner, JobSpec
from repro.runner.summary import RunSummary

pytestmark = pytest.mark.skipif(
    tk.get_backend() is None, reason="compiled timing backend unavailable"
)


@pytest.fixture(autouse=True)
def clean_runtime_metrics():
    reset_runtime_metrics()
    yield
    reset_runtime_metrics()


@pytest.fixture
def params():
    return MachineParams.scaled_down(factor=64, nodes=4, page_size=256)


def surface(result):
    payload = RunSummary.from_result(result).to_dict()
    payload.pop("backend", None)
    payload.pop("fallback_reason", None)
    return payload


# ----------------------------------------------------------------------
# degradation paths
# ----------------------------------------------------------------------
class TestDegradationPaths:
    @pytest.mark.parametrize("fault", ["oom", "create", "internal"])
    def test_injected_fault_degrades_to_identical_scalar(
        self, params, fault, monkeypatch
    ):
        scalar = run_timing(
            params, Scheme.V_COMA, make_workload("radix", intensity=0.2), 8,
            max_refs_per_node=200, fast=False,
        )
        monkeypatch.setenv(FAULT_ENV, fault)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # the warn-once fallback warning
            degraded = run_timing(
                params, Scheme.V_COMA, make_workload("radix", intensity=0.2), 8,
                max_refs_per_node=200,
            )
        assert degraded.backend == "scalar"
        assert degraded.fallback_reason.startswith("compiled engine degraded:")
        assert surface(degraded) == surface(scalar)

    def test_fallback_counted_and_warned_once(self, params, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "oom")

        def run_once():
            return run_timing(
                params, Scheme.V_COMA, make_workload("radix", intensity=0.2), 8,
                max_refs_per_node=100,
            )

        with pytest.warns(RuntimeWarning, match="degraded"):
            run_once()
        # Second identical degradation: counted again, warned never.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_once()
        assert fallback_counts() == {"compiled": 2}

    def test_no_numba_reason_survives_cache_round_trip(self, params, monkeypatch):
        monkeypatch.setenv(tk.NO_NUMBA_ENV, "1")
        result = run_timing(
            params, Scheme.V_COMA, make_workload("radix", intensity=0.2), 8,
            max_refs_per_node=100,
        )
        assert result.backend == "scalar"
        assert "compiled backend unavailable" in result.fallback_reason
        summary = RunSummary.from_result(result)
        again = RunSummary.from_dict(summary.to_dict())
        assert again.fallback_reason == result.fallback_reason

    def test_provenance_reaches_grid_stats(self, params, monkeypatch):
        """RunResult -> RunSummary -> GridStats.fallback_reasons."""
        monkeypatch.setenv(FAULT_ENV, "oom")
        spec = JobSpec.timing(
            params, Scheme.V_COMA, "radix", 8,
            max_refs_per_node=100, overrides={"intensity": 0.2},
        )
        runner = BatchRunner(jobs=1, cache=None)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            (job,) = runner.run([spec])
        assert job.ok
        assert job.summary.backend == "scalar"
        stats = runner.stats
        assert stats.backends == {"scalar": 1}
        (reason,) = stats.fallback_reasons
        assert reason.startswith("compiled engine degraded:")
        assert stats.eventful
        assert "degraded to scalar" in stats.render()
        metrics = stats.to_metrics(runtime_registry())
        assert metrics.counter("repro_runner_degraded_jobs_total").value(
            reason=reason
        ) == 1

    def test_explicit_fast_false_is_not_a_degradation(self, params):
        spec = JobSpec.timing(
            params, Scheme.V_COMA, "radix", 8,
            max_refs_per_node=100, overrides={"intensity": 0.2},
        )
        runner = BatchRunner(jobs=1, cache=None)
        os.environ.pop(FAULT_ENV, None)
        (job,) = runner.run([spec])
        assert job.summary.backend == "compiled"
        assert runner.stats.fallback_reasons == {}

    def test_mutated_state_never_degrades(self, params):
        """Once copy-back has begun the machine is not pristine; a
        silent scalar re-run would double-count.  EngineDegraded raised
        after the mutation marker must propagate, not degrade."""
        from repro.system.simulator import Simulator
        from repro.system.machine import Machine

        machine = Machine(params, Scheme.V_COMA, make_workload("radix", intensity=0.2))
        sim = Simulator(machine, max_refs_per_node=50)
        sim._fast_state_mutated = True

        def boom(_):
            raise EngineDegraded("late failure")

        from repro.system import fast_simulator

        original = fast_simulator.run_fast
        fast_simulator.run_fast = boom
        try:
            with pytest.raises(EngineDegraded):
                sim.run()
        finally:
            fast_simulator.run_fast = original


# ----------------------------------------------------------------------
# the ladder itself
# ----------------------------------------------------------------------
class TestLadder:
    def test_three_tiers_in_order(self):
        ladder = degradation_ladder()
        assert [tier.tier for tier in ladder] == ["compiled", "numpy", "scalar"]
        assert ladder[-1].healthy  # scalar is unconditional

    def test_resolved_tier_prefers_compiled(self):
        assert resolved_tier().tier == "compiled"
        assert not only_last_resort()

    def test_only_last_resort_when_everything_disabled(self, monkeypatch):
        monkeypatch.setenv(tk.NO_NUMBA_ENV, "1")
        from repro.core.replay import NO_NUMPY_ENV

        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        ladder = degradation_ladder()
        assert only_last_resort(ladder)
        assert resolved_tier(ladder).tier == "scalar"

    def test_render_marks_active_tier(self):
        text = render_ladder()
        assert "compiled" in text and "<- active" in text
        assert "scalar" in text

    def test_injected_fault_parsing(self, monkeypatch):
        assert injected_fault() is None
        monkeypatch.setenv(FAULT_ENV, "OOM")
        assert injected_fault() == "oom"


# ----------------------------------------------------------------------
# compiled-library lifecycle
# ----------------------------------------------------------------------
class TestLibraryLifecycle:
    def test_corrupted_library_quarantined_and_rebuilt(self, tmp_path, monkeypatch):
        monkeypatch.setenv(tk.CACHE_ENV, str(tmp_path))
        tk.reset_backend()
        try:
            # Build (but do not load) the cached .so, then corrupt it on
            # disk — the bit-rot scenario a later process walks into.
            path = tk._build_library(tk._C_SOURCE)
            blob = bytearray(open(path, "rb").read())
            blob[len(blob) // 2] ^= 0xFF
            open(path, "wb").write(bytes(blob))
            rebuilt = tk.get_backend()
            assert rebuilt is not None
            health = tk.backend_health()
            assert health["status"] == "ok"
            assert health["quarantined_libraries"] >= 1
            assert counter_value("repro_fastsim_quarantined_libraries_total") >= 1
            quarantined = [
                name for name in os.listdir(tmp_path) if ".corrupt-" in name
            ]
            assert quarantined
        finally:
            tk.reset_backend()

    def test_missing_sidecar_triggers_rebuild(self, tmp_path, monkeypatch):
        monkeypatch.setenv(tk.CACHE_ENV, str(tmp_path))
        tk.reset_backend()
        try:
            path = tk._build_library(tk._C_SOURCE)
            os.unlink(tk._sidecar_path(path))
            assert tk.get_backend() is not None
        finally:
            tk.reset_backend()

    def test_build_failure_still_yields_scalar_result(
        self, params, tmp_path, monkeypatch
    ):
        """gcc unavailable: the ladder bottoms out at the oracle with a
        structured reason — never a crash."""
        monkeypatch.setenv(tk.CACHE_ENV, str(tmp_path / "empty-so-cache"))
        monkeypatch.setenv("PATH", "/nonexistent")  # no gcc to be found
        tk.reset_backend()
        try:
            assert tk.get_backend() is None
            health = tk.backend_health()
            assert health["status"] == "unavailable"
            assert "compile failed" in health["detail"]
            result = run_timing(
                params, Scheme.V_COMA, make_workload("radix", intensity=0.2), 8,
                max_refs_per_node=100,
            )
            assert result.backend == "scalar"
            assert "compiled backend unavailable" in result.fallback_reason
        finally:
            tk.reset_backend()

    def test_backend_health_shape(self):
        health = tk.backend_health()
        assert set(health) >= {"status", "detail", "path", "digest", "cflags"}
        assert health["status"] == "ok"
        assert health["digest"]


# ----------------------------------------------------------------------
# fork hygiene (satellite)
# ----------------------------------------------------------------------
class TestForkAwareStreamCache:
    def test_child_starts_with_empty_stream_cache(self):
        import multiprocessing

        cache = tk.stream_cache()
        cache.clear()
        cache.put("parent-key", ([1, 2, 3], [4, 5, 6]))
        assert cache.get("parent-key") is not None

        ctx = multiprocessing.get_context("fork")

        def probe(queue):
            child_cache = tk.stream_cache()
            queue.put((len(child_cache), child_cache.hits, child_cache.misses))

        queue = ctx.Queue()
        proc = ctx.Process(target=probe, args=(queue,))
        proc.start()
        entries, hits, misses = queue.get(timeout=30)
        proc.join(timeout=30)
        assert entries == 0  # inherited entries cleared in the child
        assert hits == 0 and misses == 0
        # The parent's cache is untouched.
        assert cache.get("parent-key") is not None
        cache.clear()
