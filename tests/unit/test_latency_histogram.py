"""LatencyHistogram and its machine integration."""

import pytest

from repro import CustomWorkload, Machine, Scheme, SegmentSpec, Simulator
from repro.common.stats import LatencyHistogram
from repro.system.refs import READ, WRITE


class TestHistogram:
    def test_bucketing(self):
        h = LatencyHistogram()
        for latency in (0, 1, 2, 3, 4, 7, 8, 100):
            h.record(latency)
        assert h.bucket(0) == 2  # 0 and 1
        assert h.bucket(1) == 2  # 2, 3
        assert h.bucket(2) == 2  # 4, 7
        assert h.bucket(3) == 1  # 8
        assert h.bucket(6) == 1  # 100
        assert h.count == 8

    def test_mean_and_total(self):
        h = LatencyHistogram()
        for latency in (10, 20, 30):
            h.record(latency)
        assert h.total == 60
        assert h.mean == pytest.approx(20.0)

    def test_empty_mean(self):
        assert LatencyHistogram().mean == 0.0

    def test_percentile_bounds(self):
        h = LatencyHistogram()
        for _ in range(90):
            h.record(5)
        for _ in range(10):
            h.record(1000)
        assert h.percentile(0.5) == 7  # bucket [4, 7]
        assert h.percentile(0.99) == 1023  # 1000 lives in bucket [512, 1023]

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(0.0)
        assert LatencyHistogram().percentile(0.5) == 0

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(4)
        b.record(4)
        b.record(100)
        merged = a.merge(b)
        assert merged.count == 3
        assert merged.bucket(2) == 2
        # operands untouched
        assert a.count == 1 and b.count == 2

    def test_render(self):
        h = LatencyHistogram()
        h.record(6)
        h.record(74)
        text = h.render()
        assert "mean=" in text and "|" in text

    def test_render_empty(self):
        assert "no samples" in LatencyHistogram().render()


class TestMachineIntegration:
    def test_run_collects_latencies(self, small_params):
        def stream(node, ctx):
            base = ctx.segment("data").base
            yield READ, base
            yield WRITE, base

        workload = CustomWorkload(
            [SegmentSpec("data", 8 * small_params.page_size)], stream, name="lh"
        )
        machine = Machine(small_params, Scheme.V_COMA, workload)
        result = Simulator(machine).run()
        reads = result.read_latency_histogram()
        writes = result.write_latency_histogram()
        assert reads.count == small_params.nodes
        assert writes.count == small_params.nodes
        # The first read is an AM/remote access: latency >= 74.
        assert reads.mean >= small_params.am_hit_latency

    def test_relaxed_writes_record_zero(self, small_params):
        def stream(node, ctx):
            yield WRITE, ctx.segment("data").base

        workload = CustomWorkload(
            [SegmentSpec("data", 4 * small_params.page_size)], stream, name="rz"
        )
        machine = Machine(
            small_params, Scheme.V_COMA, workload, relaxed_writes=True
        )
        result = Simulator(machine).run()
        assert result.write_latency_histogram().mean == 0.0
