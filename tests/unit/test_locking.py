"""The crash-consistency primitives: flock, atomic writes, quarantine.

Everything the cache tier's durability rests on — atomic visibility
(temp + fsync + rename), the deterministic mid-write crash hook, the
quarantine naming contract (no store glob ever re-matches a quarantined
file), and dead-writer orphan recovery.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.runtime import counter_value, reset_runtime_metrics
from repro.runner.locking import (
    CRASH_WRITE_ENV,
    FileLock,
    atomic_write_bytes,
    atomic_write_text,
    locked_append,
    quarantine_file,
    recover_orphans,
    store_lock,
)


@pytest.fixture(autouse=True)
def clean_runtime_metrics():
    reset_runtime_metrics()
    yield
    reset_runtime_metrics()


class TestAtomicWrites:
    def test_payload_lands_whole(self, tmp_path):
        path = tmp_path / "aa" / "entry.json"
        atomic_write_bytes(path, b'{"x": 1}')
        assert path.read_bytes() == b'{"x": 1}'
        # No temp debris left behind.
        assert list(tmp_path.rglob(".*.tmp")) == []

    def test_overwrite_is_atomic(self, tmp_path):
        path = tmp_path / "entry.json"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_crash_hook_leaves_half_payload_in_temp(self, tmp_path):
        """The armed crash hook must reproduce exactly what a SIGKILL
        mid-write leaves: a partial temp file, no final file."""
        target = tmp_path / "bb" / "victim.json"
        script = (
            "import os, sys\n"
            "sys.path.insert(0, %r)\n"
            "from repro.runner.locking import atomic_write_bytes\n"
            "atomic_write_bytes(%r, b'0123456789abcdef')\n"
        ) % (str(Path(__file__).resolve().parents[2] / "src"), str(target))
        env = dict(os.environ, **{CRASH_WRITE_ENV: "victim"})
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True
        )
        from repro.runner.faults import CRASH_EXIT_CODE

        assert proc.returncode == CRASH_EXIT_CODE
        assert not target.exists()
        (partial,) = list(target.parent.glob(".*.tmp"))
        assert partial.read_bytes() == b"01234567"  # half of 16 bytes


class TestFileLock:
    def test_context_manager_acquires_and_releases(self, tmp_path):
        lock = store_lock(tmp_path)
        with lock:
            assert lock._handle is not None
        assert lock._handle is None

    def test_lock_file_location(self, tmp_path):
        assert FileLock(tmp_path / ".lock").path == tmp_path / ".lock"

    def test_reacquire_after_release(self, tmp_path):
        lock = store_lock(tmp_path)
        with lock:
            pass
        with lock:
            assert lock._handle is not None


class TestLockedAppend:
    def test_lines_interleave_whole(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with open(path, "a") as handle:
            locked_append(handle, json.dumps({"n": 1}) + "\n")
            locked_append(handle, json.dumps({"n": 2}) + "\n")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == [{"n": 1}, {"n": 2}]


class TestQuarantine:
    def test_quarantined_name_never_matches_store_globs(self, tmp_path):
        entry = tmp_path / "ab" / "abcd.json"
        entry.parent.mkdir(parents=True)
        entry.write_text("garbage")
        dest = quarantine_file(entry, tmp_path, "result-cache", reason="test")
        assert dest is not None and dest.exists()
        assert not entry.exists()
        assert dest.parent.name == "quarantine"
        assert ".corrupt-" in dest.name
        # The store's entry glob must not see it anymore.
        assert list(tmp_path.glob("*/*.json")) == []
        assert counter_value(
            "repro_store_quarantined_files_total", store="result-cache"
        ) == 1

    def test_vanished_file_is_benign(self, tmp_path):
        assert quarantine_file(tmp_path / "gone.json", tmp_path, "x") is None

    def test_repeated_quarantines_never_collide(self, tmp_path):
        dests = []
        for _ in range(3):
            entry = tmp_path / "cd" / "same-name.json"
            entry.parent.mkdir(parents=True, exist_ok=True)
            entry.write_text("junk")
            dests.append(quarantine_file(entry, tmp_path, "x").name)
        assert len(set(dests)) == 3


class TestOrphanRecovery:
    def test_dead_writer_temp_is_quarantined(self, tmp_path):
        sub = tmp_path / "ef"
        sub.mkdir()
        committed = sub / "good.json"
        committed.write_text("{}")
        # A pid that cannot be alive (max_pid is far below 2**30).
        orphan = sub / f".good.json.{2**30 + 1}.tmp"
        orphan.write_bytes(b"parti")
        assert recover_orphans(tmp_path, "result-cache") == 1
        assert not orphan.exists()
        assert committed.exists()  # committed entries never touched
        assert len(list((tmp_path / "quarantine").iterdir())) == 1

    def test_live_writer_temp_is_left_alone(self, tmp_path):
        sub = tmp_path / "gh"
        sub.mkdir()
        inflight = sub / f".busy.json.{os.getpid()}.tmp"
        inflight.write_bytes(b"writing")
        assert recover_orphans(tmp_path, "result-cache") == 0
        assert inflight.exists()
