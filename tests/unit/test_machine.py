"""Machine assembly and preload."""

import pytest

from repro import CustomWorkload, Machine, Scheme, SegmentSpec
from repro.coma.states import AMState
from repro.system.refs import READ


def simple_workload(pages=8, page_size=256):
    def stream(node, ctx):
        segment = ctx.segment("data")
        yield READ, segment.base

    return CustomWorkload(
        [SegmentSpec("data", pages * page_size)], stream, name="simple"
    )


@pytest.fixture
def vcoma_machine(small_params):
    return Machine(small_params, Scheme.V_COMA, simple_workload())


@pytest.fixture
def l0_machine(small_params):
    return Machine(small_params, Scheme.L0_TLB, simple_workload())


class TestPreloadVirtual:
    def test_every_page_mapped_at_home(self, vcoma_machine):
        machine = vcoma_machine
        segment = machine.space["data"]
        for vpn in segment.pages(machine.params.page_size):
            home = machine.layout.home_node_of_vpn(vpn)
            assert machine.page_tables[home].contains(vpn)

    def test_directory_pages_allocated(self, vcoma_machine):
        total = sum(len(s) for s in machine_dir_spaces(vcoma_machine))
        assert total == vcoma_machine.space.total_pages()

    def test_masters_installed(self, vcoma_machine):
        machine = vcoma_machine
        block = machine.params.am_block
        segment = machine.space["data"]
        for addr in range(segment.base, segment.end, block):
            entry = machine.engine.directories[machine.layout.home_node(addr)].entry(addr)
            assert entry.owner is not None
            assert machine.engine.ams[entry.owner].state_of(addr) is AMState.MASTER_SHARED

    def test_pressure_recorded(self, vcoma_machine):
        assert sum(vcoma_machine.pressure.profile()) > 0

    def test_no_frames_for_virtual_scheme(self, vcoma_machine):
        assert vcoma_machine.frames is None
        assert not vcoma_machine.page_map

    def test_invariants_after_preload(self, vcoma_machine):
        vcoma_machine.engine.check_invariants()


def machine_dir_spaces(machine):
    return machine.directory_spaces


class TestPreloadPhysical:
    def test_frames_allocated_per_page(self, l0_machine):
        assert len(l0_machine.page_map) == l0_machine.space.total_pages()

    def test_round_robin_homes(self, l0_machine):
        homes = [
            l0_machine.frames.home_of(pfn) for pfn in sorted(l0_machine.page_map.values())
        ]
        nodes = l0_machine.params.nodes
        assert homes[:nodes] == list(range(nodes))

    def test_address_conversion_roundtrip(self, l0_machine):
        segment = l0_machine.space["data"]
        vaddr = segment.base + 1234
        paddr = l0_machine._to_physical(vaddr)
        assert l0_machine._to_virtual(paddr) == vaddr
        # Page offsets survive translation.
        page_mask = l0_machine.params.page_size - 1
        assert paddr & page_mask == vaddr & page_mask

    def test_masters_at_physical_homes(self, l0_machine):
        machine = l0_machine
        block = machine.params.am_block
        segment = machine.space["data"]
        for vaddr in range(segment.base, segment.end, block):
            paddr = machine._to_physical(vaddr)
            home = machine.layout.home_node(paddr)
            entry = machine.engine.directories[home].entry(paddr)
            assert entry.owner is not None

    def test_invariants_after_preload(self, l0_machine):
        l0_machine.engine.check_invariants()


class TestAssembly:
    def test_one_node_per_processor(self, vcoma_machine, small_params):
        assert len(vcoma_machine.nodes) == small_params.nodes

    def test_node_stream_comes_from_workload(self, vcoma_machine):
        events = list(vcoma_machine.node_stream(0))
        assert len(events) == 1
        assert events[0][0] == READ

    def test_merged_counters_include_preload(self, vcoma_machine):
        counters = vcoma_machine.merged_counters()
        assert counters["pages_preloaded"] == vcoma_machine.space.total_pages()

    def test_repr_mentions_scheme(self, vcoma_machine):
        assert "V-COMA" in repr(vcoma_machine)

    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_every_scheme_builds(self, small_params, scheme):
        machine = Machine(small_params, scheme, simple_workload())
        machine.engine.check_invariants()
