"""Unit tests for the append-only run manifest and resume matching."""

import json

import pytest

from repro import MachineParams, Scheme
from repro.common.errors import ConfigurationError, RunInterrupted
from repro.runner import (
    BatchRunner,
    JobSpec,
    RunManifest,
    default_manifest_dir,
    list_runs,
    read_status,
)
from repro.runner.batch import JobFailure
from repro.runner.manifest import MANIFEST_FORMAT, new_run_id


@pytest.fixture
def params():
    return MachineParams.scaled_down(factor=256, nodes=2, page_size=256)


def specs_for(params, workloads=("fft", "radix", "ocean")):
    return [
        JobSpec.timing(
            params,
            Scheme.V_COMA,
            name,
            8,
            max_refs_per_node=300,
            overrides={"intensity": 0.2},
        )
        for name in workloads
    ]


def failure_for(spec):
    return JobFailure(
        spec=spec,
        error_type="ProtocolError",
        message="boom",
        attempts=1,
        transient=False,
    )


class TestManifestFile:
    def test_create_writes_header_and_records_flush(self, tmp_path, params):
        spec = specs_for(params, ["fft"])[0]
        manifest = RunManifest.create(tmp_path, total=1, run_id="run-a")
        assert manifest.path == tmp_path / "run-a.jsonl"

        lines = manifest.path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["manifest"] == MANIFEST_FORMAT
        assert header["run"] == "run-a" and header["total"] == 1

        (job,) = BatchRunner(jobs=1).run([spec])
        manifest.record_success(spec, job.summary, elapsed=0.5)
        # Flushed per line even before close: that is the crash story.
        entry = json.loads(manifest.path.read_text().splitlines()[1])
        assert entry["status"] == "ok"
        assert entry["hash"] == spec.content_hash()
        assert entry["summary"] == job.summary.to_dict()
        manifest.close()

    def test_round_trip_restores_completed_by_hash(self, tmp_path, params):
        fft, radix, ocean = specs_for(params)
        jobs = BatchRunner(jobs=1).run([fft, radix])
        with RunManifest.create(tmp_path, total=3, run_id="run-b") as manifest:
            for spec, job in zip((fft, radix), jobs):
                manifest.record_success(spec, job.summary)
            manifest.record_failure(ocean, failure_for(ocean))

        loaded = RunManifest.load(tmp_path, "run-b")
        assert set(loaded.completed) == {fft.content_hash(), radix.content_hash()}
        # Failures are informational only — a resumed run retries them.
        assert ocean.content_hash() in loaded.failed
        assert ocean.content_hash() not in loaded.completed
        assert loaded.completed[fft.content_hash()] == jobs[0].summary.to_dict()
        loaded.close()

    def test_failure_then_success_keeps_success(self, tmp_path, params):
        (spec,) = specs_for(params, ["fft"])
        (job,) = BatchRunner(jobs=1).run([spec])
        with RunManifest.create(tmp_path, total=1, run_id="run-c") as manifest:
            manifest.record_failure(spec, failure_for(spec))
            manifest.record_success(spec, job.summary)
        loaded = RunManifest.load(tmp_path, "run-c")
        assert spec.content_hash() in loaded.completed
        assert spec.content_hash() not in loaded.failed

    def test_torn_final_line_is_skipped(self, tmp_path, params):
        (spec,) = specs_for(params, ["fft"])
        (job,) = BatchRunner(jobs=1).run([spec])
        with RunManifest.create(tmp_path, total=2, run_id="run-d") as manifest:
            manifest.record_success(spec, job.summary)
        with open(tmp_path / "run-d.jsonl", "a") as handle:
            handle.write('{"hash": "deadbeef", "status": "ok", "summ')  # hard kill
        loaded = RunManifest.load(tmp_path, "run-d")
        assert set(loaded.completed) == {spec.content_hash()}

    def test_load_unknown_run_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunManifest.load(tmp_path, "no-such-run")

    def test_resume_appends_to_same_file(self, tmp_path, params):
        (spec,) = specs_for(params, ["fft"])
        (job,) = BatchRunner(jobs=1).run([spec])
        with RunManifest.create(tmp_path, total=2, run_id="run-e") as manifest:
            manifest.record_success(spec, job.summary)
        with RunManifest.load(tmp_path, "run-e", total=2):
            pass
        lines = (tmp_path / "run-e.jsonl").read_text().splitlines()
        assert json.loads(lines[-1]) == {"resumed": "run-e", "total": 2}

    def test_list_runs_sorted(self, tmp_path):
        for run_id in ("20260102-000000-b", "20260101-000000-a"):
            RunManifest.create(tmp_path, total=0, run_id=run_id).close()
        (tmp_path / "notes.txt").write_text("ignored")
        assert list_runs(tmp_path) == ["20260101-000000-a", "20260102-000000-b"]
        assert list_runs(tmp_path / "missing") == []

    def test_new_run_ids_are_unique_and_safe(self):
        ids = {new_run_id() for _ in range(8)}
        assert len(ids) == 8
        for run_id in ids:
            assert "/" not in run_id and run_id == run_id.strip()


class TestRunnerManifestIntegration:
    def test_runner_writes_manifest_and_resume_skips_done_work(
        self, tmp_path, params
    ):
        specs = specs_for(params)
        baseline = BatchRunner(jobs=1).run(specs)

        first = BatchRunner(jobs=1, manifest_dir=tmp_path)
        done = first.run(specs[:2])
        run_id = first.run_id
        assert run_id in list_runs(tmp_path)
        assert all(job.ok for job in done)

        second = BatchRunner(jobs=1, manifest_dir=tmp_path, resume=run_id)
        jobs = second.run(specs)
        assert [job.from_manifest for job in jobs] == [True, True, False]
        assert second.simulations_run == 1
        assert second.stats.from_manifest == 2
        for job, clean in zip(jobs, baseline):
            assert job.summary.to_dict() == clean.summary.to_dict()

    def test_interrupt_carries_resume_hint(self, tmp_path, params):
        specs = specs_for(params)

        def explode(index, total, job):
            if index == 2:
                raise KeyboardInterrupt

        runner = BatchRunner(jobs=1, progress=explode, manifest_dir=tmp_path)
        with pytest.raises(RunInterrupted) as excinfo:
            runner.run(specs)
        err = excinfo.value
        assert err.run_id == runner.run_id
        assert err.completed == 2 and err.total == 3
        assert "--resume" in str(err) and err.run_id in str(err)

        resumed = BatchRunner(jobs=1, manifest_dir=tmp_path, resume=err.run_id)
        jobs = resumed.run(specs)
        assert resumed.simulations_run == 1
        assert [job.from_manifest for job in jobs] == [True, True, False]

    def test_resume_without_manifest_dir_is_rejected(self):
        with pytest.raises(ConfigurationError, match="resume"):
            BatchRunner(jobs=1, resume="some-run")

    def test_default_manifest_dir_tracks_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert default_manifest_dir() == tmp_path / "cache" / "runs"


class TestHeartbeatsAndStatus:
    def test_heartbeat_round_trip(self, tmp_path, params):
        """A dispatched-but-unfinished job shows as running, with its
        attempt, worker slot, and dispatch stamp, via read_status."""
        spec = specs_for(params, ["fft"])[0]
        manifest = RunManifest.create(tmp_path, total=2, run_id="run-hb")
        manifest.record_heartbeat(spec, attempt=2, worker=1, workers=4)
        manifest.close()

        view = read_status("run-hb", tmp_path)
        assert view["total"] == 2 and view["workers"] == 4
        assert view["counts"] == {"ok": 0, "failed": 0, "running": 1}
        assert view["pending"] == 1
        (job,) = view["jobs"].values()
        assert job["state"] == "running"
        assert job["attempt"] == 2 and job["worker"] == 1
        assert job["since"] > 0
        assert job["label"] == spec.describe()

    def test_success_supersedes_heartbeat(self, tmp_path, params):
        spec = specs_for(params, ["fft"])[0]
        (job,) = BatchRunner(jobs=1).run([spec])
        manifest = RunManifest.create(tmp_path, total=1, run_id="run-done")
        manifest.record_heartbeat(spec, attempt=1)
        manifest.record_success(spec, job.summary, elapsed=1.5)
        manifest.close()

        view = read_status("run-done", tmp_path)
        assert view["counts"] == {"ok": 1, "failed": 0, "running": 0}
        (entry,) = view["jobs"].values()
        assert entry["state"] == "ok" and entry["elapsed"] == 1.5
        assert "since" not in entry
        assert view["avg_job_seconds"] == 1.5
        assert view["eta_seconds"] == 0.0

    def test_heartbeats_never_affect_resume(self, tmp_path, params):
        """load() must skip heartbeat lines: a heartbeat with no landed
        result is neither completed nor failed."""
        spec = specs_for(params, ["fft"])[0]
        manifest = RunManifest.create(tmp_path, total=1, run_id="run-live")
        manifest.record_heartbeat(spec, attempt=1)
        manifest.close()

        loaded = RunManifest.load(tmp_path, "run-live")
        assert loaded.completed == {} and loaded.failed == {}
        loaded.close()

    def test_runner_emits_heartbeats_before_results(self, tmp_path, params):
        specs = specs_for(params, ["fft", "radix"])
        runner = BatchRunner(jobs=1, manifest_dir=tmp_path)
        jobs = runner.run(specs)
        assert all(job.ok for job in jobs)

        lines = [
            json.loads(line)
            for line in (tmp_path / f"{runner.run_id}.jsonl").read_text().splitlines()
        ]
        beats = [l for l in lines if "heartbeat" in l]
        assert len(beats) == 2
        for spec, beat in zip(specs, beats):
            assert beat["hash"] == spec.content_hash()
            assert beat["attempt"] == 1
        # Every heartbeat precedes its job's landed result.
        for beat in beats:
            beat_at = lines.index(beat)
            landed = [
                i for i, l in enumerate(lines)
                if "heartbeat" not in l and l.get("hash") == beat["hash"]
            ]
            assert landed and all(i > beat_at for i in landed)

        view = read_status(runner.run_id, tmp_path)
        assert view["counts"] == {"ok": 2, "failed": 0, "running": 0}
        assert view["pending"] == 0

    def test_status_unknown_run_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_status("no-such-run", tmp_path)
