"""Node: cache plumbing, latency charging, inclusion."""

import pytest

from repro import CustomWorkload, Machine, Scheme, SegmentSpec
from repro.cache.cache import CLEAN_SHARED, DIRTY
from repro.coma.states import AMState
from repro.system.refs import READ


def build_machine(params, scheme=Scheme.V_COMA, pages=16):
    def stream(node, ctx):
        return iter(())

    workload = CustomWorkload(
        [SegmentSpec("data", pages * params.page_size)], stream, name="noop"
    )
    return Machine(params, scheme, workload)


@pytest.fixture
def machine(small_params):
    return build_machine(small_params)


def data_addr(machine, offset=0):
    return machine.space["data"].base + offset


class TestReadPath:
    def test_first_read_costs_am_or_remote(self, machine):
        node = machine.nodes[0]
        addr = data_addr(machine)
        cycles = node.reference(False, addr, now=0)
        assert cycles >= machine.params.am_hit_latency

    def test_second_read_is_flc_hit(self, machine):
        node = machine.nodes[0]
        addr = data_addr(machine)
        node.reference(False, addr, now=0)
        assert node.reference(False, addr, now=100) == 0
        assert node.counters["reads"] == 2

    def test_flc_block_neighbourhood_hits(self, machine):
        node = machine.nodes[0]
        addr = data_addr(machine)
        node.reference(False, addr, now=0)
        # Same 32 B FLC block: free; next FLC block within the same SLC
        # block: SLC hit (6 cycles).
        assert node.reference(False, addr + 8, now=0) == 0
        cost = node.reference(False, addr + machine.params.flc_block, now=0)
        assert cost == machine.params.slc_hit_latency

    def test_breakdown_attribution_local(self, machine):
        # Address homed at node 0 -> local AM hit for node 0.
        layout = machine.layout
        segment = machine.space["data"]
        addr = next(
            segment.base + i * machine.params.page_size
            for i in range(8)
            if layout.home_node(segment.base + i * machine.params.page_size) == 0
        )
        node = machine.nodes[0]
        node.reference(False, addr, now=0)
        assert node.breakdown.loc_stall >= machine.params.am_hit_latency
        assert node.breakdown.rem_stall == 0

    def test_breakdown_attribution_remote(self, machine):
        layout = machine.layout
        segment = machine.space["data"]
        addr = next(
            segment.base + i * machine.params.page_size
            for i in range(8)
            if layout.home_node(segment.base + i * machine.params.page_size) != 0
        )
        node = machine.nodes[0]
        node.reference(False, addr, now=0)
        assert node.breakdown.rem_stall > machine.params.block_msg_cycles


class TestWritePath:
    def test_write_fetches_exclusive(self, machine):
        node = machine.nodes[0]
        addr = data_addr(machine)
        node.reference(True, addr, now=0)
        assert machine.engine.ams[0].state_of(addr) is AMState.EXCLUSIVE
        assert node.slc.state_of(addr) == DIRTY

    def test_write_hit_on_dirty_costs_slc(self, machine):
        node = machine.nodes[0]
        addr = data_addr(machine)
        node.reference(True, addr, now=0)
        assert node.reference(True, addr, now=0) == machine.params.slc_hit_latency

    def test_read_after_own_write_free(self, machine):
        node = machine.nodes[0]
        addr = data_addr(machine)
        node.reference(True, addr, now=0)
        node.reference(False, addr, now=0)
        # FLC was not filled by the write (no-write-allocate), so the
        # read pays an SLC hit, then later reads are free.
        assert node.reference(False, addr, now=0) == 0

    def test_write_to_read_shared_upgrades(self, machine):
        node = machine.nodes[0]
        addr = data_addr(machine)
        node.reference(False, addr, now=0)  # read: shared in SLC
        before = machine.engine.counters["upgrades"]
        node.reference(True, addr, now=0)
        assert machine.engine.counters["upgrades"] == before + 1
        assert node.slc.state_of(addr) == DIRTY

    def test_exclusive_slc_fill_allows_silent_write(self, machine):
        node = machine.nodes[0]
        addr = data_addr(machine)
        node.reference(True, addr, now=0)  # EX in AM, DIRTY in SLC
        # Evict the SLC block by filling its set, then read it back:
        # the refill sees the AM still EXCLUSIVE -> CLEAN_EXCLUSIVE,
        # and the next write needs no upgrade transaction.
        slc = node.slc
        set_stride = slc.sets * slc.block_size
        for i in range(1, slc.assoc + 1):
            node.reference(False, addr + i * set_stride, now=0)
        assert not slc.contains(addr)
        node.reference(False, addr, now=0)
        before = machine.engine.counters["upgrades"]
        node.reference(True, addr, now=0)
        assert machine.engine.counters["upgrades"] == before


class TestWritebacks:
    def test_dirty_eviction_writes_back(self, machine):
        node = machine.nodes[0]
        addr = data_addr(machine)
        node.reference(True, addr, now=0)
        slc = node.slc
        set_stride = slc.sets * slc.block_size
        for i in range(1, slc.assoc + 1):
            node.reference(False, addr + i * set_stride, now=0)
        assert node.counters["slc_writebacks"] == 1
        assert machine.engine.counters["slc_writebacks_to_am"] == 1

    def test_inclusion_flc_invalidated_on_slc_eviction(self, machine):
        node = machine.nodes[0]
        addr = data_addr(machine)
        node.reference(False, addr, now=0)
        assert node.flc.contains(addr)
        slc = node.slc
        set_stride = slc.sets * slc.block_size
        for i in range(1, slc.assoc + 1):
            node.reference(False, addr + i * set_stride, now=0)
        assert not slc.contains(addr)
        assert not node.flc.contains(addr)


class TestCoherenceInclusion:
    def test_remote_write_invalidates_caches(self, machine):
        addr = data_addr(machine)
        machine.nodes[0].reference(False, addr, now=0)
        assert machine.nodes[0].flc.contains(addr)
        machine.nodes[1].reference(True, addr, now=0)
        assert not machine.nodes[0].flc.contains(addr)
        assert not machine.nodes[0].slc.contains(addr)
        assert machine.engine.ams[0].state_of(addr) is AMState.INVALID

    def test_remote_read_downgrades_writer(self, machine):
        addr = data_addr(machine)
        machine.nodes[0].reference(True, addr, now=0)  # dirty at node 0
        machine.nodes[1].reference(False, addr, now=0)
        # Node 0 keeps a read-only copy; dirty data drained to the AM.
        assert machine.nodes[0].slc.state_of(addr) == CLEAN_SHARED
        assert machine.engine.ams[0].state_of(addr) is AMState.MASTER_SHARED
        assert machine.nodes[0].counters["slc_coherence_writebacks"] == 1

    def test_downgraded_copy_still_readable_locally(self, machine):
        addr = data_addr(machine)
        machine.nodes[0].reference(True, addr, now=0)
        machine.nodes[1].reference(False, addr, now=0)
        assert machine.nodes[0].reference(False, addr + 8, now=0) in (
            0,
            machine.params.slc_hit_latency,
        )


class TestPhysicalSchemes:
    @pytest.mark.parametrize("scheme", [Scheme.L0_TLB, Scheme.L1_TLB, Scheme.L2_TLB])
    def test_basic_read_write_roundtrip(self, small_params, scheme):
        machine = build_machine(small_params, scheme=scheme)
        node = machine.nodes[0]
        addr = data_addr(machine)
        node.reference(False, addr, now=0)
        node.reference(True, addr, now=0)
        assert node.reference(True, addr, now=0) == machine.params.slc_hit_latency
        machine.engine.check_invariants()

    def test_l1_flc_virtual_slc_physical(self, small_params):
        machine = build_machine(small_params, scheme=Scheme.L1_TLB)
        node = machine.nodes[0]
        vaddr = data_addr(machine)
        node.reference(False, vaddr, now=0)
        assert node.flc.contains(vaddr)  # virtual FLC
        assert node.slc.contains(machine._to_physical(vaddr))  # physical SLC
