"""CC-NUMA baseline machine (paper §2 comparison substrate)."""

import pytest

from repro import CustomWorkload, MachineParams, Scheme, SegmentSpec, Simulator
from repro.common.errors import ProtocolError
from repro.numa import NumaMachine, SHARED_TLB
from repro.system.machine import Machine
from repro.system.refs import READ, WRITE


def build(params, scheme=SHARED_TLB, pages=16):
    def stream(node, ctx):
        return iter(())

    workload = CustomWorkload(
        [SegmentSpec("data", pages * params.page_size)], stream, name="noop"
    )
    return NumaMachine(params, scheme, workload)


def data_addr(machine, offset=0):
    return machine.space["data"].base + offset


class TestBasics:
    def test_shared_tlb_aliases_vcoma_flags(self):
        assert SHARED_TLB is Scheme.V_COMA

    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_every_scheme_builds(self, small_params, scheme):
        machine = build(small_params, scheme)
        machine.engine.check_invariants()
        assert len(machine.nodes) == small_params.nodes

    def test_no_frames_for_virtual_home(self, small_params):
        assert build(small_params, SHARED_TLB).frames is None
        assert build(small_params, Scheme.L0_TLB).frames is not None

    def test_pressure_profile_flat_zero(self, small_params):
        machine = build(small_params)
        assert all(p == 0.0 for p in machine.pressure.profile())


class TestCoherence:
    def test_read_then_local_hit(self, small_params):
        machine = build(small_params)
        node = machine.nodes[0]
        addr = data_addr(machine)
        first = node.reference(False, addr, now=0)
        assert first >= machine.params.am_hit_latency
        assert node.reference(False, addr, now=0) == 0  # FLC hit

    def test_remote_access_costs_network(self, small_params):
        machine = build(small_params)
        layout = machine.layout
        segment = machine.space["data"]
        remote = next(
            segment.base + i * machine.params.page_size
            for i in range(8)
            if layout.home_node(segment.base + i * machine.params.page_size) != 0
        )
        node = machine.nodes[0]
        cost = node.reference(False, remote, now=0)
        assert cost > machine.params.block_msg_cycles

    def test_write_takes_ownership_and_invalidates(self, small_params):
        machine = build(small_params)
        addr = data_addr(machine)
        machine.nodes[0].reference(False, addr, now=0)
        assert machine.nodes[0].slc.contains(addr)
        machine.nodes[1].reference(True, addr, now=0)
        assert not machine.nodes[0].slc.contains(addr)
        block = machine.layout.block_base(addr)
        assert machine.engine._entries[block].owner == 1

    def test_dirty_owner_supplies_reader(self, small_params):
        machine = build(small_params)
        addr = data_addr(machine)
        machine.nodes[0].reference(True, addr, now=0)
        before = machine.engine.counters["cache_to_cache"]
        machine.nodes[1].reference(False, addr, now=0)
        assert machine.engine.counters["cache_to_cache"] == before + 1
        # Writer keeps a clean copy, readable locally.
        assert machine.nodes[0].slc.contains(addr)

    def test_upgrade_from_shared(self, small_params):
        machine = build(small_params)
        addr = data_addr(machine)
        machine.nodes[0].reference(False, addr, now=0)
        machine.nodes[1].reference(False, addr, now=0)
        before = machine.engine.counters["upgrades"]
        machine.nodes[0].reference(True, addr, now=0)
        assert machine.engine.counters["upgrades"] == before + 1
        assert not machine.nodes[1].slc.contains(addr)

    def test_writeback_tolerates_shared_coherence_block(self, small_params):
        # Two dirty SLC lines inside one coherence block write back in
        # sequence; the second must not blow up.
        machine = build(small_params)
        addr = data_addr(machine)
        machine.nodes[0].reference(True, addr, now=0)
        machine.nodes[0].reference(True, addr + machine.params.slc_block, now=0)
        machine.engine.writeback(0, addr, 0)
        machine.engine.writeback(0, addr + machine.params.slc_block, 0)

    def test_foreign_owner_writeback_rejected(self, small_params):
        machine = build(small_params)
        addr = data_addr(machine)
        machine.nodes[1].reference(True, addr, now=0)
        with pytest.raises(ProtocolError):
            machine.engine.writeback(0, addr, 0)


class TestPaperMotivation:
    """Paper §2: without migration/replication, capacity misses stay
    remote; the COMA's attraction memory localizes them."""

    def _capacity_workload(self, params):
        # Working set far beyond the SLC, revisited repeatedly.
        span = params.slc_size * 8

        def stream(node, ctx):
            base = ctx.segment("data").base
            for sweep in range(3):
                for off in range(0, span, params.slc_block):
                    yield READ, base + off

        return CustomWorkload(
            [SegmentSpec("data", span)], stream, name="capacity"
        )

    def test_numa_capacity_misses_mostly_remote(self, small_params):
        workload = self._capacity_workload(small_params)
        numa = Simulator(
            NumaMachine(small_params, SHARED_TLB, workload), max_refs_per_node=1500
        ).run()
        coma = Simulator(
            Machine(small_params, Scheme.V_COMA, workload), max_refs_per_node=1500
        ).run()
        numa_b = numa.aggregate_breakdown()
        coma_b = coma.aggregate_breakdown()
        # COMA converts most remote capacity misses into local AM hits.
        assert coma_b.rem_stall < numa_b.rem_stall * 0.6
        assert coma.total_time < numa.total_time
