"""Unit tests for the observability layer: registry, tracer, exporters."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.common.stats import Counters, LatencyHistogram
from repro.obs import (
    MetricsRegistry,
    PhaseTimer,
    Tracer,
    read_trace,
    to_json,
    to_openmetrics,
    validate_trace,
    write_metrics,
)
from repro.obs.schema import TraceSchemaError


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", help="x")
        b = registry.counter("repro_x_total")
        assert a is b
        assert len(registry) == 1

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_x_total")

    def test_bad_family_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("9bad name")

    def test_negative_counter_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("repro_x_total").inc(-1)

    def test_labels_are_order_insensitive(self):
        metric = MetricsRegistry().counter("repro_x_total")
        metric.inc(1, node=0, op="read")
        metric.inc(2, op="read", node=0)
        assert metric.value(node=0, op="read") == 3

    def test_gauge_merge_takes_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("repro_depth").set(3)
        b.gauge("repro_depth").set(7)
        assert a.merge(b).get("repro_depth").value() == 7
        assert b.merge(a).get("repro_depth").value() == 7

    def test_histogram_percentile_fraction_domain(self):
        state = MetricsRegistry().histogram("repro_lat").state()
        with pytest.raises(ValueError):
            state.percentile(0.0)
        with pytest.raises(ValueError):
            state.percentile(1.5)


class TestExporters:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("repro_refs_total", help="references").inc(5, node=0)
        registry.gauge("repro_depth").set(2)
        hist = registry.histogram("repro_lat", help="latency")
        for value in (1, 2, 40):
            hist.observe(value)
        return registry

    def test_openmetrics_shape(self):
        text = to_openmetrics(self.build())
        assert '# TYPE repro_refs_total counter' in text
        assert 'repro_refs_total{node="0"} 5' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 43" in text
        assert "repro_lat_count 3" in text
        assert text.endswith("# EOF\n")

    def test_json_roundtrip(self):
        registry = self.build()
        clone = MetricsRegistry.from_dict(json.loads(to_json(registry)))
        assert clone.to_dict() == registry.to_dict()

    def test_write_metrics_auto_format(self, tmp_path):
        registry = self.build()
        assert write_metrics(registry, str(tmp_path / "m.prom")) == "openmetrics"
        assert write_metrics(registry, str(tmp_path / "m.json")) == "json"
        assert (tmp_path / "m.prom").read_text().endswith("# EOF\n")
        json.loads((tmp_path / "m.json").read_text())

    def test_stats_adapters(self):
        registry = MetricsRegistry()
        counters = Counters(reads=3, writes=1)
        counters.to_metrics(registry)
        assert registry.get("repro_events_total").value(event="reads") == 3
        histogram = LatencyHistogram()
        for value in (4, 5, 6):
            histogram.record(value)
        histogram.to_metrics(registry, family="repro_read_latency_cycles")
        state = registry.get("repro_read_latency_cycles").state()
        assert state.count == 3 and state.total == 15


class TestTracer:
    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer(buffer_size=4)
        tracer.set_meta(scheme="V-COMA", nodes=1)
        for i in range(10):
            tracer.event("msg", i)
        assert len(tracer.records) == 4
        assert tracer.dropped == 7  # meta + first 6 events displaced

    def test_end_without_begin_rejected(self):
        tracer = Tracer()
        with pytest.raises(ConfigurationError):
            tracer.end(0)

    def test_span_nesting_and_parents(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(str(path)) as tracer:
            tracer.set_meta(scheme="V-COMA", nodes=1)
            with tracer.span("run", 0):
                with tracer.span("ref", 1, node=0):
                    tracer.event("dlb_hit", 1, node=0)
        records = read_trace(str(path))
        validate_trace(records)
        spans = {r["name"]: r for r in records if r.get("kind") == "span"}
        assert spans["ref"]["parent"] == spans["run"]["id"]
        event = next(r for r in records if r.get("kind") == "event")
        assert event["span"] == spans["ref"]["id"]

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"meta","format":1,"scheme":"V-COMA"}\nnot json\n')
        with pytest.raises(ConfigurationError, match=r"bad\.jsonl:2"):
            read_trace(str(path))

    def test_duplicate_span_ids_rejected(self):
        records = [
            {"kind": "meta", "format": 1, "scheme": "V-COMA", "nodes": 1},
            {"kind": "span", "id": 1, "name": "run", "t0": 0, "t1": 5, "parent": None},
            {"kind": "span", "id": 1, "name": "ref", "t0": 0, "t1": 2, "parent": None},
        ]
        with pytest.raises(TraceSchemaError):
            validate_trace(records)


class TestPhaseTimer:
    def test_records_gauges_and_rates(self):
        registry = MetricsRegistry()
        timer = PhaseTimer(registry)
        with timer.phase("grid") as phase:
            phase.add_items(10)
        assert [p["phase"] for p in timer.phases] == ["grid"]
        seconds = registry.get("repro_phase_seconds")
        assert seconds.value(phase="grid") >= 0
        assert "grid" in timer.render()
