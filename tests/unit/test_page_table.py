"""HomePageTable lookup/walk semantics."""

import pytest

from repro import TranslationFault
from repro.vm.page_table import HomePageTable, PageTableEntry, Protection


@pytest.fixture
def table():
    return HomePageTable(node=1, global_page_sets=16)


class TestBasics:
    def test_insert_lookup(self, table):
        table.insert(PageTableEntry(vpn=0x21, payload=7))
        entry = table.lookup(0x21)
        assert entry is not None and entry.payload == 7

    def test_lookup_counts_walks(self, table):
        table.lookup(1)
        table.lookup(2)
        assert table.walks == 2

    def test_walk_raises_on_unmapped(self, table):
        with pytest.raises(TranslationFault):
            table.walk(0x99)

    def test_resolve_returns_payload(self, table):
        table.insert(PageTableEntry(vpn=5, payload=500))
        assert table.resolve(5) == 500

    def test_remove(self, table):
        table.insert(PageTableEntry(vpn=5, payload=500))
        removed = table.remove(5)
        assert removed.payload == 500
        assert not table.contains(5)

    def test_remove_unmapped_raises(self, table):
        with pytest.raises(KeyError):
            table.remove(5)

    def test_len(self, table):
        table.insert(PageTableEntry(vpn=1, payload=1))
        table.insert(PageTableEntry(vpn=2, payload=2))
        assert len(table) == 2


class TestGlobalSetOrganization:
    def test_same_color_pages_share_bucket(self, table):
        table.insert(PageTableEntry(vpn=3, payload=1))
        table.insert(PageTableEntry(vpn=3 + 16, payload=2))  # same color
        table.insert(PageTableEntry(vpn=4, payload=3))  # different color
        assert table.set_occupancy(3) == 2
        assert table.set_occupancy(4) == 1

    def test_entries_in_set(self, table):
        table.insert(PageTableEntry(vpn=3, payload=1))
        table.insert(PageTableEntry(vpn=19, payload=2))
        vpns = {e.vpn for e in table.entries_in_set(3)}
        assert vpns == {3, 19}

    def test_entries_iterates_all(self, table):
        for vpn in (1, 2, 33):
            table.insert(PageTableEntry(vpn=vpn, payload=vpn))
        assert {e.vpn for e in table.entries()} == {1, 2, 33}


class TestMetadata:
    def test_default_protection_read_write(self):
        entry = PageTableEntry(vpn=1, payload=0)
        assert entry.protection & Protection.READ
        assert entry.protection & Protection.WRITE

    def test_clear_reference_bits(self, table):
        entry = PageTableEntry(vpn=1, payload=0, referenced=True)
        table.insert(entry)
        table.clear_reference_bits()
        assert not entry.referenced

    def test_protection_flags_compose(self):
        p = Protection.READ | Protection.EXECUTE
        assert p & Protection.READ and not (p & Protection.WRITE)
