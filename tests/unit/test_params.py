"""MachineParams validation and derived geometry."""

import pytest

from repro import ConfigurationError, MachineParams


class TestDefaults:
    def test_paper_baseline_matches_section_5_1(self):
        p = MachineParams.paper_baseline()
        assert p.nodes == 32
        assert p.flc_size == 16 * 1024 and p.flc_assoc == 1 and p.flc_block == 32
        assert p.slc_size == 64 * 1024 and p.slc_assoc == 4 and p.slc_block == 64
        assert p.am_size == 4 * 1024 * 1024 and p.am_assoc == 4 and p.am_block == 128
        assert p.page_size == 4096
        assert p.slc_hit_latency == 6
        assert p.am_hit_latency == 74

    def test_paper_message_costs(self):
        p = MachineParams.paper_baseline()
        assert p.request_msg_cycles == 16
        assert p.block_msg_cycles == 272

    def test_clock_ratio(self):
        assert MachineParams().clock_ratio == 2

    def test_global_set_geometry(self):
        p = MachineParams.paper_baseline()
        # 1 MB way / 4 KB pages = 256 page colors; 32 nodes * 4 ways.
        assert p.am_way_size == 1024 * 1024
        assert p.global_page_sets == 256
        assert p.page_slots_per_global_set == 128
        assert p.blocks_per_page == 32

    def test_describe_mentions_nodes_and_latencies(self):
        text = MachineParams().describe()
        assert "32 nodes" in text
        assert "TLB/DLB miss" in text


class TestValidation:
    def test_non_power_of_two_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineParams(nodes=3)

    def test_non_power_of_two_cache_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineParams(flc_size=3000)

    def test_zero_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineParams(slc_hit_latency=0)

    def test_block_size_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            MachineParams(flc_block=256, slc_block=64)

    def test_page_smaller_than_am_block_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineParams(page_size=64)

    def test_am_way_must_cover_a_page(self):
        # 8 KB AM, 4-way => 2 KB way < 4 KB page.
        with pytest.raises(ConfigurationError):
            MachineParams(am_size=8 * 1024, page_size=4096)

    def test_clock_ratio_must_divide(self):
        with pytest.raises(ConfigurationError):
            MachineParams(cpu_clock_mhz=250, network_clock_mhz=100)


class TestScaling:
    def test_scaled_down_preserves_geometry(self):
        p = MachineParams.scaled_down(factor=8, nodes=8)
        assert p.nodes == 8
        assert p.flc_assoc == 1 and p.slc_assoc == 4 and p.am_assoc == 4
        assert p.flc_block == 32 and p.slc_block == 64 and p.am_block == 128
        assert p.am_size == 512 * 1024

    def test_scaled_down_override(self):
        p = MachineParams.scaled_down(factor=8, nodes=4, page_size=512)
        assert p.page_size == 512

    def test_scaled_down_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            MachineParams.scaled_down(factor=0)

    def test_replace_revalidates(self):
        p = MachineParams()
        with pytest.raises(ConfigurationError):
            p.replace(nodes=5)

    def test_replace_changes_field(self):
        p = MachineParams().replace(nodes=16)
        assert p.nodes == 16
        # original untouched (frozen dataclass)
        assert MachineParams().nodes == 32

    def test_derived_counts_consistent(self):
        p = MachineParams.scaled_down(factor=16, nodes=4, page_size=256)
        assert p.am_sets * p.am_block * p.am_assoc == p.am_size
        assert p.global_page_sets * p.page_size == p.am_way_size
        assert p.pages_per_am * p.page_size == p.am_size
