"""Global-set pressure accounting (Figure 11 substrate)."""

import pytest

from repro import CapacityError, ConfigurationError
from repro.vm.pressure import PressureTracker


@pytest.fixture
def tracker():
    return PressureTracker(global_page_sets=4, slots_per_set=8)


class TestAccounting:
    def test_initially_empty(self, tracker):
        assert tracker.profile() == [0.0] * 4
        assert tracker.mean_pressure() == 0.0

    def test_allocate_and_pressure(self, tracker):
        tracker.allocate_page(0)
        tracker.allocate_page(0)
        assert tracker.occupancy(0) == 2
        assert tracker.pressure(0) == pytest.approx(0.25)

    def test_free(self, tracker):
        tracker.allocate_page(1, count=3)
        tracker.free_page(1)
        assert tracker.occupancy(1) == 2

    def test_free_more_than_occupied(self, tracker):
        with pytest.raises(ValueError):
            tracker.free_page(0)

    def test_capacity_enforced(self, tracker):
        tracker.allocate_page(2, count=8)
        with pytest.raises(CapacityError):
            tracker.allocate_page(2)

    def test_exact_capacity_allowed(self, tracker):
        tracker.allocate_page(2, count=8)
        assert tracker.pressure(2) == 1.0

    def test_set_of_vpn(self, tracker):
        assert tracker.set_of_vpn(5) == 1
        assert tracker.set_of_vpn(4) == 0

    def test_out_of_range_set(self, tracker):
        with pytest.raises(ConfigurationError):
            tracker.allocate_page(4)


class TestStatistics:
    def test_peak_survives_free(self, tracker):
        tracker.allocate_page(0, count=4)
        tracker.free_page(0, count=4)
        assert tracker.peak_profile()[0] == pytest.approx(0.5)
        assert tracker.profile()[0] == 0.0

    def test_imbalance_uniform(self, tracker):
        for gps in range(4):
            tracker.allocate_page(gps, count=2)
        assert tracker.imbalance() == pytest.approx(1.0)

    def test_imbalance_concentrated(self, tracker):
        tracker.allocate_page(0, count=4)
        assert tracker.imbalance() == pytest.approx(4.0)

    def test_summary_keys(self, tracker):
        tracker.allocate_page(0)
        summary = tracker.summary()
        assert set(summary) == {"mean", "max", "min", "imbalance"}

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            PressureTracker(0, 8)
