"""ProtectionManager: protection changes and shootdown costs."""

import pytest

from repro import CustomWorkload, Machine, Scheme, SegmentSpec, TranslationFault
from repro.system.refs import READ
from repro.vm.page_table import Protection
from repro.vm.protection import SHOOTDOWN_INTERRUPT_CYCLES, ProtectionManager


def build(params, scheme):
    workload = CustomWorkload(
        [SegmentSpec("data", 8 * params.page_size)],
        lambda node, ctx: iter(()),
        name="noop",
    )
    return Machine(params, scheme, workload)


def first_vpn(machine):
    return machine.space["data"].base // machine.params.page_size


class TestProtectionChange:
    def test_updates_page_table_entry(self, small_params):
        machine = build(small_params, Scheme.V_COMA)
        manager = ProtectionManager(machine)
        vpn = first_vpn(machine)
        manager.change_protection(vpn, Protection.READ)
        home = machine.layout.home_node_of_vpn(vpn)
        assert machine.page_tables[home].walk(vpn).protection == Protection.READ

    def test_unknown_page_faults(self, small_params):
        machine = build(small_params, Scheme.V_COMA)
        manager = ProtectionManager(machine)
        with pytest.raises(TranslationFault):
            manager.change_protection(0xDEAD000, Protection.READ)

    def test_counts_changes(self, small_params):
        machine = build(small_params, Scheme.V_COMA)
        manager = ProtectionManager(machine)
        manager.change_protection(first_vpn(machine), Protection.READ)
        assert manager.counters["protection_changes"] == 1


class TestCosts:
    def test_tlb_scheme_pays_full_shootdown(self, small_params):
        machine = build(small_params, Scheme.L0_TLB)
        manager = ProtectionManager(machine)
        cost = manager.change_protection(first_vpn(machine), Protection.READ)
        others = small_params.nodes - 1
        expected = (
            small_params.request_msg_cycles
            + SHOOTDOWN_INTERRUPT_CYCLES
            + others * small_params.request_msg_cycles
        )
        assert cost == expected
        assert manager.counters["shootdown_interrupts"] == others

    def test_vcoma_cost_is_home_side_only(self, small_params):
        machine = build(small_params, Scheme.V_COMA)
        manager = ProtectionManager(machine)
        cost = manager.change_protection(first_vpn(machine), Protection.READ)
        # No holders beyond preload's master at home-ish nodes; cost is
        # one request + directory access (+ maybe one update round).
        assert cost <= (
            small_params.request_msg_cycles * 3
            + small_params.directory_lookup_latency
        )
        assert manager.counters["shootdown_interrupts"] == 0

    def test_vcoma_updates_block_holders(self, small_params):
        machine = build(small_params, Scheme.V_COMA)
        # Give the page a remote sharer first.
        segment = machine.space["data"]
        machine.nodes[1].reference(False, segment.base, now=0)
        manager = ProtectionManager(machine)
        manager.change_protection(first_vpn(machine), Protection.READ)
        assert manager.counters["holder_updates"] >= 1

    def test_shootdown_cost_grows_with_nodes(self):
        from repro import MachineParams

        costs = []
        for nodes in (2, 4, 8):
            params = MachineParams.scaled_down(factor=64, nodes=nodes, page_size=256)
            machine = build(params, Scheme.L0_TLB)
            costs.append(ProtectionManager(machine).mapping_change_cost())
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_vcoma_cost_constant_in_nodes(self):
        from repro import MachineParams

        costs = []
        for nodes in (2, 4, 8):
            params = MachineParams.scaled_down(factor=64, nodes=nodes, page_size=256)
            machine = build(params, Scheme.V_COMA)
            costs.append(ProtectionManager(machine).mapping_change_cost())
        assert len(set(costs)) == 1

    def test_unmap_counts(self, small_params):
        machine = build(small_params, Scheme.L1_TLB)
        manager = ProtectionManager(machine)
        cost = manager.unmap_page(first_vpn(machine))
        assert cost > 0
        assert manager.counters["unmaps"] == 1
