"""COMA-F protocol engine: state transitions, timing, injection."""

import pytest

from repro.common.address import AddressLayout
from repro.common.errors import CapacityError, ProtocolError
from repro.coma.protocol import ProtocolEngine
from repro.coma.states import AMState
from repro.interconnect.crossbar import Crossbar


@pytest.fixture
def engine(tiny_params, tiny_layout):
    return ProtocolEngine(tiny_params, tiny_layout, Crossbar(tiny_params))


def addr_homed_at(layout, home, color_offset=0, block=0):
    """A block address homed at ``home``; distinct ``color_offset``
    values give distinct pages of the *same* page color (hence the same
    attraction-memory sets), which is what the replacement tests need."""
    vpn = home + color_offset * layout.global_page_sets
    return (vpn << layout.page_bits) + block * (1 << layout.block_bits)


class TestPreload:
    def test_master_lands_at_home(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=1)
        owner = engine.preload_block(addr)
        assert owner == 1
        assert engine.ams[1].state_of(addr) is AMState.MASTER_SHARED
        assert engine.directories[1].entry(addr).owner == 1

    def test_preload_idempotent(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=0)
        assert engine.preload_block(addr) == 0
        assert engine.preload_block(addr) == 0
        assert engine.ams[0].occupancy() == 1

    def test_overflow_spreads_to_other_nodes(self, engine, tiny_layout):
        # Fill home 0's set (assoc=4) with same-color pages, then more.
        addrs = [addr_homed_at(tiny_layout, 0, color_offset=i) for i in range(6)]
        owners = [engine.preload_block(a) for a in addrs]
        assert owners[:4] == [0, 0, 0, 0]
        assert owners[4:] == [1, 1]

    def test_preload_capacity_error_when_full(self, engine, tiny_layout):
        assoc = engine.params.am_assoc
        addrs = [
            addr_homed_at(tiny_layout, 0, color_offset=i)
            for i in range(assoc * engine.params.nodes + 1)
        ]
        for a in addrs[:-1]:
            engine.preload_block(a)
        with pytest.raises(CapacityError):
            engine.preload_block(addrs[-1])


class TestReadPath:
    def test_local_hit(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=0)
        engine.preload_block(addr)
        outcome = engine.fetch(0, addr, is_write=False, now=0)
        assert outcome.remote is False
        assert outcome.cycles == engine.params.am_hit_latency
        engine.check_invariants()

    def test_remote_read_installs_shared(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=1)
        engine.preload_block(addr)
        outcome = engine.fetch(0, addr, is_write=False, now=0)
        assert outcome.remote is True
        assert engine.ams[0].state_of(addr) is AMState.SHARED
        assert engine.ams[1].state_of(addr) is AMState.MASTER_SHARED
        assert engine.directories[1].entry(addr).sharers == {0}
        engine.check_invariants()

    def test_remote_read_cost_includes_block_message(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=1)
        engine.preload_block(addr)
        outcome = engine.fetch(0, addr, is_write=False, now=0)
        p = engine.params
        expected = (
            p.am_hit_latency  # local miss detection
            + p.request_msg_cycles  # request to home
            + p.directory_lookup_latency
            + p.am_hit_latency  # home AM access
            + p.block_msg_cycles  # block reply
        )
        assert outcome.cycles == expected

    def test_read_downgrades_exclusive_owner(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=0)
        engine.preload_block(addr)
        engine.fetch(1, addr, is_write=True, now=0)  # node 1 takes EX
        assert engine.ams[1].state_of(addr) is AMState.EXCLUSIVE
        engine.fetch(0, addr, is_write=False, now=0)
        assert engine.ams[1].state_of(addr) is AMState.MASTER_SHARED
        assert engine.ams[0].state_of(addr) is AMState.SHARED
        engine.check_invariants()


class TestWritePath:
    def test_remote_write_takes_exclusive(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=1)
        engine.preload_block(addr)
        outcome = engine.fetch(0, addr, is_write=True, now=0)
        assert outcome.remote is True
        assert engine.ams[0].state_of(addr) is AMState.EXCLUSIVE
        assert engine.ams[1].state_of(addr) is AMState.INVALID
        entry = engine.directories[1].entry(addr)
        assert entry.owner == 0 and not entry.sharers
        engine.check_invariants()

    def test_write_invalidates_all_sharers(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=0)
        engine.preload_block(addr)
        engine.fetch(1, addr, is_write=False, now=0)  # node 1 shares
        assert engine.directories[0].entry(addr).sharers == {1}
        engine.fetch(1, addr, is_write=True, now=0)  # upgrade via hit path
        assert engine.ams[1].state_of(addr) is AMState.EXCLUSIVE
        assert engine.ams[0].state_of(addr) is AMState.INVALID
        engine.check_invariants()

    def test_local_write_hit_on_exclusive(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=0)
        engine.preload_block(addr)
        engine.fetch(0, addr, is_write=True, now=0)  # upgrade MS -> EX
        outcome = engine.fetch(0, addr, is_write=True, now=0)
        assert outcome.remote is False

    def test_upgrade_for_write_from_shared(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=1)
        engine.preload_block(addr)
        engine.fetch(0, addr, is_write=False, now=0)  # SHARED at node 0
        outcome = engine.upgrade_for_write(0, addr, now=0)
        assert outcome.remote is True
        assert engine.ams[0].state_of(addr) is AMState.EXCLUSIVE
        assert engine.ams[1].state_of(addr) is AMState.INVALID
        engine.check_invariants()

    def test_upgrade_on_exclusive_is_local(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=0)
        engine.preload_block(addr)
        engine.fetch(0, addr, is_write=True, now=0)
        outcome = engine.upgrade_for_write(0, addr, now=0)
        assert outcome.remote is False

    def test_upgrade_without_copy_is_inclusion_bug(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=0)
        engine.preload_block(addr)
        with pytest.raises(ProtocolError):
            engine.upgrade_for_write(1, addr, now=0)


class TestWriteback:
    def test_writeback_requires_master(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=1)
        engine.preload_block(addr)
        engine.fetch(0, addr, is_write=True, now=0)
        engine.writeback(0, addr, now=0)  # EX at node 0: fine
        assert engine.counters["slc_writebacks_to_am"] == 1

    def test_writeback_on_shared_raises(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=1)
        engine.preload_block(addr)
        engine.fetch(0, addr, is_write=False, now=0)
        with pytest.raises(ProtocolError):
            engine.writeback(0, addr, now=0)


class TestReplacementAndInjection:
    def _fill_set(self, engine, layout, node, count, write=False):
        """Touch ``count`` same-color remote blocks from ``node``."""
        other = 1 - node
        addrs = [addr_homed_at(layout, other, color_offset=i) for i in range(count)]
        for a in addrs:
            engine.preload_block(a)
        for a in addrs:
            engine.fetch(node, a, is_write=write, now=0)
        return addrs

    def test_shared_replacement_drops_silently(self, engine, tiny_layout):
        assoc = engine.params.am_assoc
        addrs = self._fill_set(engine, tiny_layout, node=0, count=assoc + 1)
        # Node 0's set overflowed: one SHARED replica was dropped and
        # the directory no longer lists node 0 for it.
        resident = [a for a in addrs if engine.ams[0].contains(a)]
        assert len(resident) == assoc
        dropped = [a for a in addrs if not engine.ams[0].contains(a)]
        assert len(dropped) == 1
        entry = engine.directories[1].entry(dropped[0])
        assert 0 not in entry.sharers
        assert engine.counters["sharer_drops"] == 1
        engine.check_invariants()

    def test_master_replacement_injects(self, engine, tiny_layout):
        assoc = engine.params.am_assoc
        # Node 0 takes exclusive ownership of assoc+1 same-set blocks:
        # the last fetch must evict a master, which gets injected.
        addrs = self._fill_set(engine, tiny_layout, node=0, count=assoc + 1, write=True)
        assert engine.counters["injections"] >= 1
        # Every block still has exactly one master somewhere.
        for a in addrs:
            owner = engine.directories[1].entry(a).owner
            assert owner is not None
            assert engine.ams[owner].state_of(a).is_master
        engine.check_invariants()

    def test_injection_capacity_error_when_no_room(self, tiny_params, tiny_layout):
        engine = ProtocolEngine(tiny_params, tiny_layout, Crossbar(tiny_params))
        assoc = tiny_params.am_assoc
        nodes = tiny_params.nodes
        # Fill one global set completely with masters owned by node 0
        # and node 1 (preload spreads), then force one more master out.
        total = assoc * nodes
        addrs = [addr_homed_at(tiny_layout, 0, color_offset=i) for i in range(total)]
        for a in addrs:
            engine.preload_block(a)
        # All slots of this global set hold masters; taking exclusive
        # ownership of one more block in the same set must fail.
        extra = addr_homed_at(tiny_layout, 0, color_offset=total)
        with pytest.raises(CapacityError):
            engine.preload_block(extra)


class TestInvariantChecker:
    def test_detects_double_master(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=0)
        engine.preload_block(addr)
        engine.ams[1].install(addr, AMState.EXCLUSIVE)  # corrupt
        with pytest.raises(ProtocolError):
            engine.check_invariants()

    def test_detects_unregistered_sharer(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=0)
        engine.preload_block(addr)
        engine.ams[1].install(addr, AMState.SHARED)  # not in directory
        with pytest.raises(ProtocolError):
            engine.check_invariants()

    def test_clean_state_passes(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=0)
        engine.preload_block(addr)
        engine.fetch(1, addr, is_write=False, now=0)
        engine.check_invariants()


class TestPurge:
    def test_purge_removes_all_copies(self, engine, tiny_layout):
        addr = addr_homed_at(tiny_layout, home=0)
        engine.preload_block(addr)
        engine.fetch(1, addr, is_write=False, now=0)
        engine.purge_block(addr)
        assert not engine.ams[0].contains(addr)
        assert not engine.ams[1].contains(addr)
        assert engine.directories[0].peek(addr) is None

    def test_purge_unknown_block_noop(self, engine):
        engine.purge_block(0x123400)  # must not raise
