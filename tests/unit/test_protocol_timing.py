"""Exact timing equations of the COMA-F protocol paths.

These tests pin the latency model documented in
``repro/coma/protocol.py`` so accidental double-charging (or dropped
charges) cannot creep in: each transaction's cycle count is written out
long-hand from the paper's Section 5.1 constants.
"""

import pytest

from repro.common.address import AddressLayout
from repro.coma.protocol import ProtocolEngine
from repro.coma.states import AMState
from repro.interconnect.crossbar import Crossbar


@pytest.fixture
def engine(small_params, small_layout):
    return ProtocolEngine(small_params, small_layout, Crossbar(small_params))


def addr_homed_at(layout, home, color_offset=0):
    vpn = home + color_offset * layout.global_page_sets
    return vpn << layout.page_bits


def costs(params):
    return (
        params.am_hit_latency,
        params.request_msg_cycles,
        params.block_msg_cycles,
        params.directory_lookup_latency,
    )


class TestReadCosts:
    def test_local_hit(self, engine, small_layout):
        am, req, blk, dirl = costs(engine.params)
        addr = addr_homed_at(small_layout, 0)
        engine.preload_block(addr)
        assert engine.fetch(0, addr, False, 0).cycles == am

    def test_remote_read_supplier_is_home(self, engine, small_layout):
        am, req, blk, dirl = costs(engine.params)
        addr = addr_homed_at(small_layout, 2)
        engine.preload_block(addr)
        outcome = engine.fetch(0, addr, False, 0)
        # local miss + request to home + dir + home AM + block reply
        assert outcome.cycles == am + req + dirl + am + blk

    def test_remote_read_forwarded_to_owner(self, engine, small_layout):
        am, req, blk, dirl = costs(engine.params)
        addr = addr_homed_at(small_layout, 2)
        engine.preload_block(addr)
        engine.fetch(1, addr, True, 0)  # node 1 takes the master away
        outcome = engine.fetch(0, addr, False, 0)
        # local miss + req to home + dir + forward + owner AM + block
        assert outcome.cycles == am + req + dirl + req + am + blk

    def test_read_at_home_skips_request_message(self, engine, small_layout):
        am, req, blk, dirl = costs(engine.params)
        addr = addr_homed_at(small_layout, 2)
        engine.preload_block(addr)
        # Home requests its own block: the master is local, pure AM hit.
        assert engine.fetch(2, addr, False, 0).cycles == am


class TestWriteCosts:
    def test_write_fetch_no_sharers(self, engine, small_layout):
        am, req, blk, dirl = costs(engine.params)
        addr = addr_homed_at(small_layout, 2)
        engine.preload_block(addr)
        outcome = engine.fetch(0, addr, True, 0)
        # Master at home is invalidated via the holders round:
        # miss + req + dir + (inval到home? owner==home, exclude=req ->
        # holder set {home}; inval home->home is local/free, ack free)
        # + home AM + block reply.
        assert outcome.cycles == am + req + dirl + am + blk

    def test_write_fetch_invalidates_remote_sharer(self, engine, small_layout):
        am, req, blk, dirl = costs(engine.params)
        addr = addr_homed_at(small_layout, 2)
        engine.preload_block(addr)
        engine.fetch(1, addr, False, 0)  # node 1 becomes a sharer
        outcome = engine.fetch(0, addr, True, 0)
        # miss + req + dir + slowest inval/ack round (home->1, 1->home)
        # + home AM + block reply.
        assert outcome.cycles == am + req + dirl + (req + req) + am + blk

    def test_upgrade_from_master_shared(self, engine, small_layout):
        am, req, blk, dirl = costs(engine.params)
        addr = addr_homed_at(small_layout, 2)
        engine.preload_block(addr)
        engine.fetch(0, addr, False, 0)  # node 0 shares
        # Node 0 writes: upgrade — request + dir + invalidation of the
        # master at home (node-local, message-free) + grant ack back.
        outcome = engine.upgrade_for_write(0, addr, 0)
        assert outcome.cycles == am + req + dirl + req

    def test_exclusive_rewrite_free_of_protocol(self, engine, small_layout):
        am, req, blk, dirl = costs(engine.params)
        addr = addr_homed_at(small_layout, 2)
        engine.preload_block(addr)
        engine.fetch(0, addr, True, 0)
        assert engine.fetch(0, addr, True, 0).cycles == am


class TestMessageAccounting:
    def test_remote_read_message_counts(self, engine, small_layout):
        addr = addr_homed_at(small_layout, 2)
        engine.preload_block(addr)
        engine.fetch(0, addr, False, 0)
        counters = engine.crossbar.counters
        assert counters["msg_read_request"] == 1
        assert counters["msg_block_reply"] == 1

    def test_sharer_drop_message_counted(self, engine, small_layout):
        assoc = engine.params.am_assoc
        addrs = [addr_homed_at(small_layout, 2, color_offset=i) for i in range(assoc + 1)]
        for a in addrs:
            engine.preload_block(a)
        for a in addrs:
            engine.fetch(0, a, False, 0)
        assert engine.crossbar.counters["msg_sharer_drop"] == 1

    def test_translation_reported_separately(self, small_params, small_layout):
        from repro.coma.protocol import TranslationAgent

        class FixedPenalty(TranslationAgent):
            def at_home(self, home, vpn, for_ownership=False, injection=False, requester=None):
                return 40

        engine = ProtocolEngine(
            small_params, small_layout, Crossbar(small_params), agent=FixedPenalty()
        )
        addr = addr_homed_at(small_layout, 2)
        engine.preload_block(addr)
        outcome = engine.fetch(0, addr, False, 0)
        assert outcome.translation == 40
        am, req, blk, dirl = costs(small_params)
        assert outcome.cycles == am + req + dirl + 40 + am + blk
