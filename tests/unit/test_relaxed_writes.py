"""Relaxed write model (consistency-ablation substrate)."""

import pytest

from repro import CustomWorkload, Machine, Scheme, SegmentSpec, Simulator
from repro.coma.states import AMState
from repro.system.refs import READ, WRITE


def build(params, relaxed):
    def stream(node, ctx):
        base = ctx.segment("data").base
        for i in range(30):
            yield WRITE, base + (i * 128) % (16 * params.page_size)
        yield READ, base

    workload = CustomWorkload(
        [SegmentSpec("data", 16 * params.page_size)], stream, name="wr"
    )
    return Machine(params, Scheme.V_COMA, workload, relaxed_writes=relaxed)


class TestRelaxedWrites:
    def test_relaxed_run_is_faster(self, small_params):
        sc = Simulator(build(small_params, relaxed=False)).run()
        relaxed = Simulator(build(small_params, relaxed=True)).run()
        assert relaxed.total_time < sc.total_time

    def test_coherence_state_still_updates(self, small_params):
        machine = build(small_params, relaxed=True)
        node = machine.nodes[0]
        addr = machine.space["data"].base
        cycles = node.reference(True, addr, now=0)
        assert cycles == 0  # processor does not wait
        assert machine.engine.ams[0].state_of(addr) is AMState.EXCLUSIVE

    def test_hidden_cycles_counted(self, small_params):
        machine = build(small_params, relaxed=True)
        result = Simulator(machine).run()
        hidden = sum(n.counters["hidden_store_cycles"] for n in machine.nodes)
        assert hidden > 0
        # The breakdown accounts contain no store stalls beyond reads.
        assert result.total_time < hidden + result.total_time

    def test_breakdown_conservation_still_holds(self, small_params):
        machine = build(small_params, relaxed=True)
        result = Simulator(machine).run()
        for breakdown in result.breakdowns:
            assert breakdown.total == result.total_time

    def test_reads_still_stall(self, small_params):
        machine = build(small_params, relaxed=True)
        node = machine.nodes[1]
        addr = machine.space["data"].base + 64
        assert node.reference(False, addr, now=0) > 0

    def test_sc_is_default(self, small_params):
        machine = build(small_params, relaxed=False)
        node = machine.nodes[0]
        addr = machine.space["data"].base
        assert node.reference(True, addr, now=0) > 0
