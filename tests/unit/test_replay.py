"""Unit tests for the vectorized replay kernels.

The replay contract is *bit-identical miss counts* with the scalar
:class:`~repro.core.tlb.TranslationBuffer` — same RNG substreams, same
rejection-sampling victim draws — for every organization, with and
without numpy.  Every test here checks the fast kernels against the
scalar reference on the same stream.
"""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.core import replay
from repro.core.replay import NO_NUMPY_ENV, ReplayStream, bank_miss_counts, get_numpy
from repro.core.tlb import Organization, TranslationBank, TranslationBuffer

ORGS = (
    Organization.FULLY_ASSOCIATIVE,
    Organization.SET_ASSOCIATIVE,
    Organization.DIRECT_MAPPED,
)


def scalar_misses(pages, entries, org, seed=7, name="bank"):
    """Reference miss count: feed the stream to a real buffer."""
    assoc = None
    if org is Organization.SET_ASSOCIATIVE:
        assoc = min(TranslationBank.SET_ASSOC_WAYS, entries)
    rng = make_rng(seed, name, entries, org.value)
    buffer = TranslationBuffer(entries, org, assoc=assoc, rng=rng)
    for page in pages:
        buffer.access(page)
    return buffer.misses


def replay_misses(pages, entries, org, seed=7, name="bank"):
    rng = make_rng(seed, name, entries, org.value)
    return ReplayStream(pages).misses(entries, org, rng)


def streams():
    """A spread of access patterns exercising every kernel branch."""
    rnd = random.Random(42)
    return {
        "empty": [],
        "single": [5],
        "all-same": [3] * 500,
        "all-distinct": list(range(400)),
        "cyclic": [p % 40 for p in range(600)],
        "skewed": [rnd.randrange(12) for _ in range(800)],
        "wide-random": [rnd.randrange(5000) for _ in range(1200)],
        "phase-shift": [p % 16 for p in range(400)]
        + [200 + (p % 300) for p in range(600)],
        "huge-pages": [rnd.randrange(1 << 40) for _ in range(300)],
    }


class TestKernelEquivalence:
    @pytest.mark.parametrize("org", ORGS, ids=lambda o: o.value)
    @pytest.mark.parametrize("entries", (1, 2, 8, 32, 128))
    def test_matches_scalar_buffer(self, org, entries):
        for label, pages in streams().items():
            fast = replay_misses(pages, entries, org)
            slow = scalar_misses(pages, entries, org)
            assert fast == slow, (label, org.value, entries)

    def test_stream_reuse_across_configs(self):
        """One ReplayStream replays many configs without cross-talk."""
        pages = streams()["phase-shift"]
        stream = ReplayStream(pages)
        for org in ORGS:
            for entries in (8, 32):
                rng = make_rng(7, "bank", entries, org.value)
                assert stream.misses(entries, org, rng) == scalar_misses(
                    pages, entries, org
                )

    def test_matches_translation_bank(self):
        """End-to-end: bank_miss_counts vs a live TranslationBank."""
        pages = streams()["skewed"]
        configs = [(8, Organization.FULLY_ASSOCIATIVE),
                   (8, Organization.DIRECT_MAPPED),
                   (32, Organization.SET_ASSOCIATIVE)]
        bank = TranslationBank(configs, seed=11, name="l1:0")
        for page in pages:
            bank.access(page)
        fast = bank_miss_counts(pages, configs, seed=11, name="l1:0")
        for entries, org in configs:
            assert fast[(entries, org)] == bank.misses(entries, org)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            replay_misses([1, 2, 3], 12, Organization.FULLY_ASSOCIATIVE)


class TestNumpyGate:
    def test_env_var_disables_numpy(self, monkeypatch):
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        monkeypatch.setattr(replay, "_numpy_module", None)
        assert get_numpy() is None
        monkeypatch.delenv(NO_NUMPY_ENV)
        monkeypatch.setattr(replay, "_numpy_module", None)
        get_numpy()  # either numpy or None; must not raise

    @pytest.mark.parametrize("org", ORGS, ids=lambda o: o.value)
    def test_fallback_matches_scalar(self, org, monkeypatch):
        """With numpy gated off, the pure-Python path still agrees."""
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        monkeypatch.setattr(replay, "_numpy_module", None)
        pages = streams()["cyclic"]
        assert replay_misses(pages, 8, org) == scalar_misses(pages, 8, org)

    def test_numpy_and_fallback_agree(self, monkeypatch):
        if get_numpy() is None:
            pytest.skip("numpy unavailable in this environment")
        pages = streams()["wide-random"]
        with_numpy = {
            org: replay_misses(pages, 32, org) for org in ORGS
        }
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        monkeypatch.setattr(replay, "_numpy_module", None)
        without = {org: replay_misses(pages, 32, org) for org in ORGS}
        assert with_numpy == without


class TestBankMissCounts:
    def test_duplicate_configs_computed_once(self):
        pages = streams()["cyclic"]
        configs = [(8, Organization.FULLY_ASSOCIATIVE)] * 3
        counts = bank_miss_counts(pages, configs, seed=7, name="bank")
        assert len(counts) == 1
        assert counts[(8, Organization.FULLY_ASSOCIATIVE)] == scalar_misses(pages, 8, Organization.FULLY_ASSOCIATIVE)

    def test_empty_stream(self):
        counts = bank_miss_counts(
            [], [(8, Organization.FULLY_ASSOCIATIVE)], seed=7, name="bank"
        )
        assert counts == {(8, Organization.FULLY_ASSOCIATIVE): 0}
