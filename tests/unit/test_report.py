"""Report generator."""

import pytest

from repro import MachineParams
from repro.analysis.report import generate_report, write_report

TINY = MachineParams.scaled_down(factor=256, nodes=2, page_size=256)
FAST = dict(
    params=TINY,
    workloads=["barnes"],
    sizes=(8, 32),
    intensities={"barnes": 0.1},
)


@pytest.fixture(scope="module")
def report_text():
    return generate_report(include_figures=True, **FAST)


class TestGenerateReport:
    def test_contains_every_artifact_section(self, report_text):
        for section in (
            "Figure 8",
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Table 2",
            "Table 3",
            "Table 4",
            "virtual-tag memory overhead",
        ):
            assert section in report_text, section

    def test_machine_description_included(self, report_text):
        assert "2 nodes" in report_text

    def test_code_fences_balanced(self, report_text):
        assert report_text.count("```") % 2 == 0

    def test_tables_only_mode(self):
        text = generate_report(include_figures=False, **FAST)
        assert "Table 2" in text
        assert "Figure 8" not in text
        assert len(text) < len(generate_report(include_figures=True, **FAST))

    def test_raytrace_adds_v2_bar(self):
        text = generate_report(
            params=TINY,
            workloads=["raytrace"],
            sizes=(8,),
            intensities={"raytrace": 0.3},
            include_figures=True,
        )
        assert "DLB/8/V2" in text

    def test_write_report_roundtrip(self, tmp_path):
        path = tmp_path / "r.md"
        text = write_report(str(path), include_figures=False, **FAST)
        assert path.read_text() == text
