"""RunResult aggregation."""

import pytest

from repro import CustomWorkload, Machine, Scheme, SegmentSpec, Simulator
from repro.analysis import run_miss_sweep, run_timing
from repro.system.refs import READ, WRITE


def run_small(params, scheme=Scheme.V_COMA):
    def stream(node, ctx):
        base = ctx.segment("data").base
        for i in range(20):
            yield (READ if i % 2 else WRITE), base + (i * 64) % (8 * params.page_size)

    workload = CustomWorkload(
        [SegmentSpec("data", 8 * params.page_size)], stream, name="mini"
    )
    machine = Machine(params, scheme, workload)
    return Simulator(machine).run()


class TestAggregation:
    def test_total_references(self, small_params):
        result = run_small(small_params)
        assert result.total_references == 20 * small_params.nodes

    def test_aggregate_equals_sum_of_nodes(self, small_params):
        result = run_small(small_params)
        agg = result.aggregate_breakdown()
        assert agg.busy == sum(b.busy for b in result.breakdowns)
        assert agg.rem_stall == sum(b.rem_stall for b in result.breakdowns)

    def test_average_scales(self, small_params):
        result = run_small(small_params)
        avg = result.average_breakdown()
        agg = result.aggregate_breakdown()
        assert avg.busy == pytest.approx(agg.busy / small_params.nodes)

    def test_every_node_total_matches_wall_clock(self, small_params):
        result = run_small(small_params)
        for b in result.breakdowns:
            assert b.total == result.total_time

    def test_counters_merged_from_all_components(self, small_params):
        result = run_small(small_params)
        counters = result.counters
        assert counters["pages_preloaded"] > 0
        assert counters["reads"] > 0

    def test_summary_keys(self, small_params):
        summary = run_small(small_params).summary()
        for key in ("scheme", "workload", "total_time", "busy", "sync"):
            assert key in summary

    def test_pressure_profile_length(self, small_params):
        result = run_small(small_params)
        assert len(result.pressure_profile()) == small_params.global_page_sets


class TestAgentIntrospection:
    def test_study_results_none_without_study_agent(self, small_params):
        result = run_small(small_params)
        assert result.study_results() is None
        assert result.timing_summary() is None

    def test_timing_summary_populated(self, small_params):
        from repro import make_workload

        result = run_timing(
            small_params,
            Scheme.L0_TLB,
            make_workload("ocean", intensity=0.1),
            entries=8,
            max_refs_per_node=300,
        )
        summary = result.timing_summary()
        assert summary["entries"] == 8
        assert summary["accesses"] > 0
        assert 0 <= summary["miss_rate"] <= 1

    def test_study_results_populated(self, small_params):
        from repro import TapPoint, make_workload

        result = run_miss_sweep(
            small_params,
            make_workload("ocean", intensity=0.1),
            sizes=(8,),
            max_refs_per_node=300,
        )
        study = result.study_results()
        assert study is not None
        assert study.accesses(TapPoint.L0) == result.total_references
