"""Deterministic RNG substreams."""

from repro.common.rng import make_rng, substream_seed


def test_same_names_same_seed():
    assert substream_seed(1, "tlb", 0) == substream_seed(1, "tlb", 0)


def test_different_names_different_seed():
    assert substream_seed(1, "tlb", 0) != substream_seed(1, "tlb", 1)
    assert substream_seed(1, "tlb") != substream_seed(1, "dlb")


def test_different_base_seed_differs():
    assert substream_seed(1, "x") != substream_seed(2, "x")


def test_make_rng_reproducible():
    a = make_rng(42, "w", 3)
    b = make_rng(42, "w", 3)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_make_rng_independent_streams():
    a = make_rng(42, "w", 3)
    b = make_rng(42, "w", 4)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_mixed_name_types():
    assert substream_seed(0, "a", 1, "b") == substream_seed(0, "a", 1, "b")
    assert substream_seed(0, "a", 1) != substream_seed(0, "a", "1")
