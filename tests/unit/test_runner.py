"""Unit tests for the batch runner, job specs, and the result cache."""

import json

import pytest

from repro import MachineParams, Scheme
from repro.core.schemes import TapPoint
from repro.core.tlb import Organization
from repro.runner import BatchRunner, JobSpec, ResultCache, RunSummary, default_cache_dir
from repro.runner.cache import CACHE_DIR_ENV


@pytest.fixture
def params():
    return MachineParams.scaled_down(factor=256, nodes=2, page_size=256)


def sweep_spec(params, **overrides):
    kwargs = dict(
        sizes=(8, 32),
        orgs=(Organization.FULLY_ASSOCIATIVE,),
        max_refs_per_node=300,
        overrides={"intensity": 0.2},
    )
    kwargs.update(overrides)
    return JobSpec.sweep(params, "radix", **kwargs)


def timing_spec(params, **overrides):
    kwargs = dict(max_refs_per_node=300, overrides={"intensity": 0.2})
    kwargs.update(overrides)
    return JobSpec.timing(params, Scheme.V_COMA, "fft", 8, **kwargs)


# ----------------------------------------------------------------------
# JobSpec
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_content_hash_is_stable(self, params):
        assert sweep_spec(params).content_hash() == sweep_spec(params).content_hash()

    def test_label_excluded_from_hash(self, params):
        plain = sweep_spec(params)
        labelled = sweep_spec(params, label="figure-8")
        assert plain.content_hash() == labelled.content_hash()
        assert labelled.describe() == "figure-8"

    def test_hash_sensitive_to_params_and_knobs(self, params):
        base = sweep_spec(params)
        other_params = MachineParams.scaled_down(factor=256, nodes=2, page_size=256, seed=99)
        assert base.content_hash() != sweep_spec(other_params).content_hash()
        assert base.content_hash() != sweep_spec(params, sizes=(8,)).content_hash()
        assert base.content_hash() != sweep_spec(params, overrides={"intensity": 0.3}).content_hash()
        assert base.content_hash() != timing_spec(params).content_hash()

    def test_hash_folds_in_version(self, params):
        spec = sweep_spec(params)
        assert spec.content_hash(version="1.0") != spec.content_hash(version="2.0")

    def test_timing_requires_scheme(self, params):
        with pytest.raises(ValueError):
            JobSpec(kind="timing", params=params, workload="radix")

    def test_rejects_unknown_kind(self, params):
        with pytest.raises(ValueError):
            JobSpec(kind="mystery", params=params, workload="radix")

    def test_execute_sweep_matches_direct_run(self, params):
        from repro.analysis import run_miss_sweep
        from repro.workloads import make_workload

        spec = sweep_spec(params)
        direct = run_miss_sweep(
            params,
            make_workload("radix", intensity=0.2),
            sizes=(8, 32),
            orgs=(Organization.FULLY_ASSOCIATIVE,),
            max_refs_per_node=300,
        )
        summary = spec.execute()
        tap = TapPoint.L0
        assert summary.study_results().misses(tap, 8, Organization.FULLY_ASSOCIATIVE) == (
            direct.study_results().misses(tap, 8, Organization.FULLY_ASSOCIATIVE)
        )
        assert summary.total_time == direct.total_time


# ----------------------------------------------------------------------
# RunSummary
# ----------------------------------------------------------------------
class TestRunSummary:
    def test_round_trips_through_json(self, params):
        summary = timing_spec(params).execute()
        clone = RunSummary.from_dict(json.loads(json.dumps(summary.to_dict())))
        assert clone.scheme is summary.scheme
        assert clone.total_time == summary.total_time
        assert clone.total_references == summary.total_references
        assert clone.timing_summary() == summary.timing_summary()
        assert clone.aggregate_breakdown().total == summary.aggregate_breakdown().total
        assert clone.translation_overhead_ratio() == summary.translation_overhead_ratio()

    def test_study_results_survive_round_trip(self, params):
        summary = sweep_spec(params).execute()
        clone = RunSummary.from_dict(summary.to_dict())
        org = Organization.FULLY_ASSOCIATIVE
        for tap in (TapPoint.L0, TapPoint.HOME):
            for size in (8, 32):
                assert clone.study_results().misses(tap, size, org) == (
                    summary.study_results().misses(tap, size, org)
                )


# ----------------------------------------------------------------------
# ResultCache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_default_dir_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    def test_round_trip(self, tmp_path, params):
        cache = ResultCache(tmp_path)
        spec = timing_spec(params)
        assert cache.get(spec) is None
        summary = spec.execute()
        cache.put(spec, summary, elapsed=1.0)
        assert cache.contains(spec)
        assert len(cache) == 1
        restored = cache.get(spec)
        assert restored.total_time == summary.total_time
        assert restored.timing_summary() == summary.timing_summary()

    def test_corrupt_entry_is_a_miss(self, tmp_path, params):
        cache = ResultCache(tmp_path)
        spec = timing_spec(params)
        cache.put(spec, spec.execute(), elapsed=1.0)
        cache.path_for(spec).write_text("{not json")
        assert cache.get(spec) is None

    def test_clear(self, tmp_path, params):
        cache = ResultCache(tmp_path)
        spec = timing_spec(params)
        cache.put(spec, spec.execute(), elapsed=1.0)
        cache.clear()
        assert len(cache) == 0


# ----------------------------------------------------------------------
# BatchRunner
# ----------------------------------------------------------------------
class TestBatchRunner:
    def test_serial_run_preserves_order_and_counts(self, params):
        runner = BatchRunner(jobs=1)
        specs = [sweep_spec(params), timing_spec(params)]
        jobs = runner.run(specs)
        assert [job.spec for job in jobs] == specs
        assert runner.simulations_run == 2
        assert all(not job.from_cache for job in jobs)
        assert all(job.elapsed > 0 for job in jobs)

    def test_warm_cache_runs_zero_simulations(self, tmp_path, params):
        specs = [sweep_spec(params), timing_spec(params)]
        first = BatchRunner(jobs=1, cache=ResultCache(tmp_path))
        first.run(specs)
        assert first.simulations_run == 2

        second = BatchRunner(jobs=1, cache=ResultCache(tmp_path))
        jobs = second.run(specs)
        assert second.simulations_run == 0
        assert second.cache_hits == 2
        assert all(job.from_cache for job in jobs)
        assert jobs[0].summary.total_time == first.run(specs)[0].summary.total_time

    def test_progress_called_for_every_job(self, tmp_path, params):
        calls = []
        cache = ResultCache(tmp_path)
        BatchRunner(jobs=1, cache=cache).run([timing_spec(params)])
        runner = BatchRunner(
            jobs=1, cache=cache, progress=lambda done, total, job: calls.append((done, total, job.from_cache))
        )
        runner.run([timing_spec(params), sweep_spec(params)])
        assert (1, 2, True) in calls
        assert (2, 2, False) in calls

    def test_parallel_matches_serial(self, params):
        specs = [
            sweep_spec(params),
            timing_spec(params),
            timing_spec(params, overrides={"intensity": 0.3}),
        ]
        serial = BatchRunner(jobs=1).run(specs)
        parallel = BatchRunner(jobs=4).run(specs)
        for s_job, p_job in zip(serial, parallel):
            assert p_job.summary.to_dict() == s_job.summary.to_dict()

    def test_run_labelled(self, params):
        runner = BatchRunner(jobs=1)
        out = runner.run_labelled([sweep_spec(params, label="sweep"), timing_spec(params)])
        assert set(out) == {"sweep", "timing:fft/V-COMA/8"}

    def test_run_labelled_rejects_duplicate_labels(self, params):
        from repro.common.errors import ConfigurationError

        runner = BatchRunner(jobs=1)
        specs = [sweep_spec(params, label="dup"), timing_spec(params, label="dup")]
        with pytest.raises(ConfigurationError, match="dup"):
            runner.run_labelled(specs)
        # Implicit describe() collisions are caught too.
        specs = [timing_spec(params), timing_spec(params, overrides={"intensity": 0.3})]
        assert specs[0].describe() == specs[1].describe()
        with pytest.raises(ConfigurationError):
            runner.run_labelled(specs)

    def test_effective_jobs_clamped_to_cpu_count(self, params, monkeypatch):
        import os as _os

        monkeypatch.setattr(_os, "cpu_count", lambda: 1)
        import repro.runner.batch as batch_mod

        runner = BatchRunner(jobs=8)
        runner.run([timing_spec(params)])
        assert runner.effective_jobs == 1

    def test_effective_jobs_clamped_to_pending(self, params, tmp_path):
        # A fully warm cache leaves nothing pending: no workers spawn.
        cache = ResultCache(tmp_path)
        spec = timing_spec(params)
        BatchRunner(jobs=1, cache=cache).run([spec])
        runner = BatchRunner(jobs=8, cache=cache)
        runner.run([spec])
        assert runner.effective_jobs == 1
        assert runner.simulations_run == 0

    def test_no_replay_matches_replay(self, params):
        spec = sweep_spec(params)
        fast = BatchRunner(jobs=1, replay=True).run([spec])[0].summary
        slow = BatchRunner(jobs=1, replay=False).run([spec])[0].summary

        def surface(summary):
            # The engine-provenance stamps are allowed (expected, even)
            # to differ: the replayed summary reports "<capture>+replay".
            data = summary.to_dict()
            data.pop("backend", None)
            data.pop("fallback_reason", None)
            return data

        assert surface(fast) == surface(slow)

    def test_trace_store_reused_across_runs(self, params, tmp_path):
        from repro.runner import TraceStore

        store = TraceStore(root=tmp_path)
        specs = [sweep_spec(params), sweep_spec(params, sizes=(16, 64))]
        runner = BatchRunner(jobs=1, trace_store=store)
        jobs = runner.run(specs)
        # Both sweeps share one hierarchy identity: record once, replay twice.
        assert len(store) == 1
        assert store.hits == 1 and store.misses == 1
        assert jobs[0].summary.study_results() is not None


# ----------------------------------------------------------------------
# Supervision: failure capture, retries, keep-going (serial path)
# ----------------------------------------------------------------------
class TestSupervisionSerial:
    def test_deterministic_failure_fails_fast_by_default(self, params):
        from repro.common.errors import ProtocolError
        from repro.runner import FaultPlan

        plan = FaultPlan().raising(1, "ProtocolError", "injected bug")
        runner = BatchRunner(jobs=1, retries=3, retry_delay=0.01, fault_plan=plan)
        with pytest.raises(ProtocolError, match="injected bug"):
            runner.run([timing_spec(params), timing_spec(params, label="bad")])
        # Deterministic failures are never retried, whatever the budget.
        assert runner.stats.retries == 0
        assert runner.stats.deterministic_failures == 1

    def test_keep_going_records_structured_failure(self, params):
        from repro.runner import FaultPlan, JobFailure

        plan = FaultPlan().raising(0, "ConfigurationError", "broken spec")
        runner = BatchRunner(
            jobs=1, retries=2, retry_delay=0.01, fault_plan=plan, keep_going=True
        )
        good = timing_spec(params)
        results = runner.run([timing_spec(params, label="bad"), good])
        assert len(results) == 2
        failure, success = results
        assert isinstance(failure, JobFailure)
        assert not failure.ok and failure.summary is None
        assert failure.error_type == "ConfigurationError"
        assert failure.attempts == 1 and not failure.transient
        assert success.ok and success.summary.total_time > 0
        assert runner.stats.failed == 1 and runner.stats.completed == 1
        assert runner.stats.retries == 0

    def test_transient_failure_retried_until_success(self, params):
        from repro.runner import FaultPlan

        plan = FaultPlan().transient(0, times=2)
        runner = BatchRunner(jobs=1, retries=2, retry_delay=0.001, fault_plan=plan)
        (job,) = runner.run([timing_spec(params)])
        assert job.ok and job.attempts == 3
        assert runner.stats.retries == 2
        assert runner.stats.failed == 0
        # The retried result matches an undisturbed run bit-for-bit.
        (clean,) = BatchRunner(jobs=1).run([timing_spec(params)])
        assert job.summary.to_dict() == clean.summary.to_dict()

    def test_transient_failure_exhausts_budget(self, params):
        from repro.runner import FaultPlan

        plan = FaultPlan().transient(0, times=None)
        runner = BatchRunner(
            jobs=1, retries=2, retry_delay=0.001, fault_plan=plan, keep_going=True
        )
        (failure,) = runner.run([timing_spec(params)])
        assert not failure.ok
        assert failure.transient and failure.error_type == "OSError"
        assert failure.attempts == 3  # 1 try + 2 retries
        assert runner.stats.transient_failures == 1

    def test_fail_fast_raises_original_exception_serially(self, params):
        from repro.runner import FaultPlan

        plan = FaultPlan().transient(0, times=None)
        runner = BatchRunner(jobs=1, retries=0, fault_plan=plan)
        with pytest.raises(OSError, match="injected transient fault"):
            runner.run([timing_spec(params)])

    def test_backoff_is_deterministic_and_exponential(self, params):
        runner = BatchRunner(jobs=1, retries=3, retry_delay=0.25)
        first = runner._backoff(3, 1)
        assert first == runner._backoff(3, 1)
        assert runner._backoff(3, 2) > first
        assert runner._backoff(4, 1) != first  # jitter varies by job
        # Jitter stays within [0.5, 1.0] of the nominal exponential.
        for attempt in (1, 2, 3):
            nominal = 0.25 * 2 ** (attempt - 1)
            delay = runner._backoff(7, attempt)
            assert 0.5 * nominal <= delay <= nominal

    def test_progress_reports_failures_under_keep_going(self, params):
        from repro.runner import FaultPlan

        seen = []
        plan = FaultPlan().raising(0, "ValueError", "boom")
        runner = BatchRunner(
            jobs=1, fault_plan=plan, keep_going=True,
            progress=lambda done, total, job: seen.append((done, total, job.ok)),
        )
        runner.run([timing_spec(params), timing_spec(params, label="b")])
        assert seen == [(1, 2, False), (2, 2, True)]

    def test_resume_requires_manifest_dir(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            BatchRunner(resume="some-run")


# ----------------------------------------------------------------------
# Result-cache size cap
# ----------------------------------------------------------------------
class TestCacheSizeCap:
    def entries(self, params, count):
        return [
            timing_spec(params, overrides={"intensity": 0.2 + 0.01 * i})
            for i in range(count)
        ]

    def test_lru_eviction_on_put(self, tmp_path, params):
        import os as _os

        cache = ResultCache(tmp_path)
        specs = self.entries(params, 3)
        summary = specs[0].execute()
        paths = [cache.put(spec, summary, elapsed=1.0) for spec in specs]
        for age, path in enumerate(paths):
            _os.utime(path, (1_000_000 + age, 1_000_000 + age))
        entry_size = paths[0].stat().st_size
        cache.max_bytes = int(entry_size * 2.5)
        extra = timing_spec(params, overrides={"intensity": 0.5})
        cache.put(extra, summary, elapsed=1.0)
        assert not paths[0].exists(), "oldest entry should be evicted"
        assert cache.contains(extra)
        assert cache.total_bytes() <= cache.max_bytes

    def test_hit_refreshes_recency(self, tmp_path, params):
        import os as _os

        cache = ResultCache(tmp_path)
        specs = self.entries(params, 2)
        summary = specs[0].execute()
        paths = [cache.put(spec, summary, elapsed=1.0) for spec in specs]
        for age, path in enumerate(paths):
            _os.utime(path, (1_000_000 + age, 1_000_000 + age))
        cache.get(specs[0])  # touches the oldest entry
        entry_size = paths[0].stat().st_size
        cache.max_bytes = int(entry_size * 2.5)
        cache.put(timing_spec(params, overrides={"intensity": 0.6}), summary, elapsed=1.0)
        assert paths[0].exists(), "freshly hit entry must survive eviction"
        assert not paths[1].exists()

    def test_env_cap_parsing(self, monkeypatch):
        from repro.runner.cache import CACHE_MAX_MB_ENV, default_max_bytes

        monkeypatch.delenv(CACHE_MAX_MB_ENV, raising=False)
        assert default_max_bytes() is None
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "2")
        assert default_max_bytes() == 2 * 1024 * 1024
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "0.5")
        assert default_max_bytes() == 512 * 1024
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "junk")
        assert default_max_bytes() is None
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "-3")
        assert default_max_bytes() is None
