"""Scheme and TapPoint definitions."""

from repro import SCHEME_ORDER, Scheme, TAP_OF_SCHEME, TapPoint


def test_five_schemes_in_paper_order():
    assert [s.value for s in SCHEME_ORDER] == [
        "L0-TLB",
        "L1-TLB",
        "L2-TLB",
        "L3-TLB",
        "V-COMA",
    ]


def test_cache_virtuality_progression():
    assert not Scheme.L0_TLB.uses_virtual_flc
    assert Scheme.L1_TLB.uses_virtual_flc and not Scheme.L1_TLB.uses_virtual_slc
    assert Scheme.L2_TLB.uses_virtual_slc and not Scheme.L2_TLB.uses_virtual_am
    assert Scheme.L3_TLB.uses_virtual_am
    assert Scheme.V_COMA.uses_virtual_am


def test_only_vcoma_shares_translation():
    shared = [s for s in Scheme if s.translation_is_shared]
    assert shared == [Scheme.V_COMA]


def test_tap_mapping_complete():
    assert set(TAP_OF_SCHEME) == set(Scheme)
    assert TAP_OF_SCHEME[Scheme.V_COMA] is TapPoint.HOME
    assert TAP_OF_SCHEME[Scheme.L2_TLB] is TapPoint.L2


def test_no_wback_tap_is_not_a_scheme_tap():
    assert TapPoint.L2_NO_WBACK not in TAP_OF_SCHEME.values()


def test_str_forms():
    assert str(Scheme.V_COMA) == "V-COMA"
    assert str(TapPoint.L2_NO_WBACK) == "L2/no_wback"
