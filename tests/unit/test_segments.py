"""Segmented virtual address space."""

import pytest

from repro import ConfigurationError
from repro.vm.segments import Segment, SegmentKind, SegmentedAddressSpace


class TestSegment:
    def test_bounds(self):
        s = Segment("s", base=0x1000, size=0x200)
        assert s.end == 0x1200
        assert s.contains(0x1000) and s.contains(0x11FF)
        assert not s.contains(0x1200)

    def test_address_checked(self):
        s = Segment("s", base=0x1000, size=0x200)
        assert s.address(0) == 0x1000
        with pytest.raises(IndexError):
            s.address(0x200)

    def test_pages(self):
        s = Segment("s", base=0x1000, size=0x200)
        assert list(s.pages(page_size=256)) == [16, 17]
        assert s.page_count(256) == 2

    def test_pages_partial_last_page(self):
        s = Segment("s", base=0, size=300)
        assert s.page_count(256) == 2

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            Segment("s", base=0, size=0)


class TestSpace:
    def test_segments_never_overlap(self):
        space = SegmentedAddressSpace(page_size=256)
        a = space.allocate("a", 1000)
        b = space.allocate("b", 500)
        assert a.end <= b.base

    def test_bases_page_aligned(self):
        space = SegmentedAddressSpace(page_size=256)
        a = space.allocate("a", 100)
        b = space.allocate("b", 100)
        assert a.base % 256 == 0 and b.base % 256 == 0

    def test_alignment_honoured(self):
        space = SegmentedAddressSpace(page_size=256)
        space.allocate("a", 100)
        b = space.allocate("b", 100, alignment=4096)
        assert b.base % 4096 == 0

    def test_alignment_below_page_rejected(self):
        space = SegmentedAddressSpace(page_size=256)
        with pytest.raises(ConfigurationError):
            space.allocate("a", 100, alignment=128)

    def test_duplicate_name_rejected(self):
        space = SegmentedAddressSpace(page_size=256)
        space.allocate("a", 100)
        with pytest.raises(ConfigurationError):
            space.allocate("a", 100)

    def test_lookup_and_iteration(self):
        space = SegmentedAddressSpace(page_size=256)
        a = space.allocate("a", 100, kind=SegmentKind.PRIVATE, owner=3)
        assert space["a"] is a
        assert "a" in space and "b" not in space
        assert list(space) == [a]
        assert len(space) == 1
        assert a.owner == 3

    def test_segment_of(self):
        space = SegmentedAddressSpace(page_size=256)
        a = space.allocate("a", 100)
        assert space.segment_of(a.base) is a
        assert space.segment_of(a.base - 1) is None

    def test_totals(self):
        space = SegmentedAddressSpace(page_size=256)
        space.allocate("a", 300)
        space.allocate("b", 256)
        assert space.total_bytes() == 556
        assert space.total_pages() == 3  # 2 + 1

    def test_bad_page_size(self):
        with pytest.raises(ConfigurationError):
            SegmentedAddressSpace(page_size=100)
