"""Simulator: interleaving, barriers, locks, truncation."""

import pytest

from repro import CustomWorkload, Machine, ReproError, Scheme, SegmentSpec, Simulator
from repro.system.refs import BARRIER, LOCK, READ, UNLOCK, WRITE


def run_machine(params, streams, pages=32, **sim_kwargs):
    """Build and run a machine whose node streams are given literally."""

    def factory(node, ctx):
        base = ctx.segment("data").base
        for op, value in streams[node]:
            if op in (READ, WRITE, LOCK, UNLOCK):
                yield op, base + value
            else:
                yield op, value

    workload = CustomWorkload(
        [SegmentSpec("data", pages * params.page_size)], factory, name="literal"
    )
    machine = Machine(params, Scheme.V_COMA, workload)
    return Simulator(machine, **sim_kwargs).run()


class TestBasics:
    def test_empty_streams(self, small_params):
        result = run_machine(small_params, [[] for _ in range(small_params.nodes)])
        assert result.total_time == 0
        assert result.total_references == 0

    def test_reference_counting(self, small_params):
        streams = [[(READ, 0)], [(READ, 0), (WRITE, 256)], [], []]
        result = run_machine(small_params, streams)
        assert result.refs_per_node == [1, 2, 0, 0]

    def test_busy_time_charged_per_reference(self, small_params):
        streams = [[(READ, 0), (READ, 0)], [], [], []]
        result = run_machine(small_params, streams)
        # think_cycles defaults to 4 for CustomWorkload.
        assert result.breakdowns[0].busy == 8

    def test_max_refs_truncates(self, small_params):
        streams = [[(READ, i * 8) for i in range(100)], [], [], []]
        result = run_machine(small_params, streams, max_refs_per_node=10)
        assert result.refs_per_node[0] == 10

    def test_deterministic(self, small_params):
        streams = [[(WRITE, i * 64) for i in range(50)] for _ in range(4)]
        a = run_machine(small_params, streams)
        b = run_machine(small_params, streams)
        assert a.total_time == b.total_time
        assert a.aggregate_breakdown().to_dict() == b.aggregate_breakdown().to_dict()


class TestBarriers:
    def test_barrier_synchronizes_clocks(self, small_params):
        # Node 0 does lots of work before the barrier; others wait.
        streams = [
            [(WRITE, i * 128) for i in range(50)] + [(BARRIER, 0)],
            [(BARRIER, 0)],
            [(BARRIER, 0)],
            [(BARRIER, 0)],
        ]
        result = run_machine(small_params, streams)
        assert result.barriers == 4
        # The idle nodes accumulated sync time while waiting.
        assert result.breakdowns[1].sync > 0
        assert result.breakdowns[1].sync >= result.breakdowns[0].sync

    def test_unreleased_barrier_is_deadlock(self, small_params):
        streams = [[(BARRIER, 0)], [(BARRIER, 0)], [(BARRIER, 0)], []]
        # Node 3 never arrives but finishes immediately -> barrier
        # releases with the active quorum; no deadlock.
        result = run_machine(small_params, streams)
        assert result.barriers == 3

    def test_barrier_reuse_after_release_ok(self, small_params):
        # Once released, a barrier id may be reused by a later phase.
        streams = [
            [(BARRIER, 0), (READ, 0), (BARRIER, 0)]
            for _ in range(small_params.nodes)
        ]
        result = run_machine(small_params, streams)
        assert result.barriers == 2 * small_params.nodes

    def test_final_idle_tail_counts_as_sync(self, small_params):
        streams = [[(WRITE, i * 128) for i in range(30)], [(READ, 0)], [], []]
        result = run_machine(small_params, streams)
        assert result.breakdowns[2].sync == result.total_time
        total = result.breakdowns[1]
        assert total.sync == result.total_time - (
            total.busy + total.loc_stall + total.rem_stall + total.tlb_stall
        )


class TestLocks:
    def test_lock_grants_in_fifo_order(self, small_params):
        streams = [
            [(LOCK, 0), (WRITE, 64), (UNLOCK, 0)],
            [(LOCK, 0), (WRITE, 64), (UNLOCK, 0)],
            [],
            [],
        ]
        result = run_machine(small_params, streams)
        # One of the two nodes waited for the lock.
        syncs = [result.breakdowns[n].sync for n in (0, 1)]
        assert max(syncs) > 0

    def test_unlock_by_non_holder_rejected(self, small_params):
        streams = [[(UNLOCK, 0)], [], [], []]
        with pytest.raises(ReproError):
            run_machine(small_params, streams)

    def test_lock_generates_coherence_traffic(self, small_params):
        streams = [[(LOCK, 0), (UNLOCK, 0)], [], [], []]
        result = run_machine(small_params, streams)
        # Acquire + release are real stores to the lock word.
        assert result.breakdowns[0].memory_stall > 0

    def test_contended_lock_serializes(self, small_params):
        # Both nodes increment under the lock 5 times; the total time
        # must cover both critical sections serialized.
        def critical():
            return [(LOCK, 0), (WRITE, 64), (UNLOCK, 0)]

        streams = [critical() * 5, critical() * 5, [], []]
        result = run_machine(small_params, streams)
        assert result.total_time > 0
        held = result.breakdowns[0].sync + result.breakdowns[1].sync
        assert held > 0


class TestInvariantHook:
    def test_check_invariants_every(self, small_params):
        streams = [[(WRITE, i * 128) for i in range(20)] for _ in range(4)]
        run_machine(small_params, streams, check_invariants_every=5)
