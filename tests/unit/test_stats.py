"""Counters and TimeBreakdown."""

import pytest

from repro.common.stats import AverageBreakdown, Counters, TimeBreakdown


class TestCounters:
    def test_unknown_reads_zero(self):
        assert Counters()["nope"] == 0

    def test_add_and_get(self):
        c = Counters()
        c.add("x")
        c.add("x", 4)
        assert c["x"] == 5

    def test_initial_values(self):
        c = Counters(a=2)
        assert c["a"] == 2

    def test_merge_sums(self):
        a = Counters(x=1, y=2)
        b = Counters(y=3, z=4)
        merged = a.merge(b)
        assert merged["x"] == 1 and merged["y"] == 5 and merged["z"] == 4
        # merge does not mutate the operands
        assert a["y"] == 2 and b["y"] == 3

    def test_iteration_sorted(self):
        c = Counters(b=1, a=2)
        assert [k for k, _ in c] == ["a", "b"]

    def test_contains_and_len(self):
        c = Counters(a=1)
        assert "a" in c and "b" not in c
        assert len(c) == 1

    def test_setitem(self):
        c = Counters()
        c["k"] = 7
        assert c["k"] == 7

    def test_to_dict_copy(self):
        c = Counters(a=1)
        d = c.to_dict()
        d["a"] = 99
        assert c["a"] == 1


class TestTimeBreakdown:
    def test_total(self):
        b = TimeBreakdown(busy=1, sync=2, loc_stall=3, rem_stall=4, tlb_stall=5)
        assert b.total == 15
        assert b.memory_stall == 7

    def test_overhead_ratio(self):
        b = TimeBreakdown(loc_stall=50, rem_stall=50, tlb_stall=10)
        assert b.translation_overhead_ratio() == pytest.approx(0.1)

    def test_overhead_ratio_zero_stall(self):
        assert TimeBreakdown(busy=100).translation_overhead_ratio() == 0.0

    def test_addition(self):
        a = TimeBreakdown(busy=1, sync=1)
        b = TimeBreakdown(busy=2, rem_stall=3)
        s = a + b
        assert s.busy == 3 and s.sync == 1 and s.rem_stall == 3

    def test_scaled_produces_average(self):
        b = TimeBreakdown(busy=10, sync=20)
        avg = b.scaled(2)
        assert isinstance(avg, AverageBreakdown)
        assert avg.busy == 5 and avg.sync == 10

    def test_scaled_rejects_zero(self):
        with pytest.raises(ValueError):
            TimeBreakdown().scaled(0)

    def test_to_dict_fields(self):
        d = TimeBreakdown(busy=1).to_dict()
        assert set(d) == {"busy", "sync", "loc_stall", "rem_stall", "tlb_stall"}


class TestAverageBreakdown:
    def test_normalized_to_baseline(self):
        base = AverageBreakdown(busy=50, loc_stall=50)
        other = AverageBreakdown(busy=50, loc_stall=25)
        norm = other.normalized_to(base)
        assert norm["total"] == pytest.approx(0.75)
        assert norm["busy"] == pytest.approx(0.5)

    def test_normalized_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            AverageBreakdown().normalized_to(AverageBreakdown())
