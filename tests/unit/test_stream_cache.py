"""Unit tests for the grid-level stream-sharing LRU.

:class:`~repro.core.timing_kernels.StreamCache` lets every cell of a
grid that shares a workload reuse one materialized ``(ops, vals)``
column pair.  The properties that matter: LRU hit/evict/cap behavior
under the ``REPRO_STREAM_CACHE_MB`` byte budget, and keying by the
*workload* identity (``JobSpec.trace_hash()``) rather than the grid
cell, so cells that differ only in bank sizes/orgs share streams while
anything that changes the reference stream itself (machine params,
page size, workload knobs, truncation) gets its own entry.
"""

import array

import pytest

from repro import MachineParams
from repro.core.timing_kernels import (
    STREAM_CACHE_ENV,
    StreamCache,
    materialize_shared,
    stream_cache,
)
from repro.core.tlb import Organization
from repro.runner import JobSpec


def columns(n):
    """A fake materialized column pair costing exactly 9*n bytes."""
    return array.array("B", [0] * n), array.array("q", range(n))


class TestLRU:
    def test_hit_returns_same_object_and_counts(self):
        cache = StreamCache()
        cols = columns(4)
        cache.put("a", cols)
        assert cache.get("a") is cols
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self):
        cache = StreamCache()
        assert cache.get("nope") is None
        assert cache.misses == 1 and cache.hits == 0

    def test_byte_accounting(self):
        cache = StreamCache()
        cache.put("a", columns(10))
        assert cache.total_bytes == 90  # 1 + 8 bytes per reference
        cache.put("a", columns(5))  # replacement, not accumulation
        assert cache.total_bytes == 45 and len(cache) == 1

    def test_evicts_least_recently_used(self, monkeypatch):
        monkeypatch.setenv(STREAM_CACHE_ENV, str(250 / (1024 * 1024)))
        cache = StreamCache()
        cache.put("a", columns(10))  # 90 bytes
        cache.put("b", columns(10))  # 180 bytes
        assert cache.get("a") is not None  # refresh a: b is now LRU
        cache.put("c", columns(10))  # 270 > 250: evict b
        assert cache.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None

    def test_oversized_entry_never_resident(self, monkeypatch):
        monkeypatch.setenv(STREAM_CACHE_ENV, str(50 / (1024 * 1024)))
        cache = StreamCache()
        cache.put("big", columns(10))  # 90 bytes > 50-byte cap
        assert len(cache) == 0 and cache.total_bytes == 0

    def test_cap_env_read_per_call(self, monkeypatch):
        cache = StreamCache()
        cache.put("a", columns(10))
        monkeypatch.setenv(STREAM_CACHE_ENV, str(90 / (1024 * 1024)))
        cache.put("b", columns(10))  # 180 > 90: "a" evicted under new cap
        assert cache.get("a") is None and cache.get("b") is not None

    def test_bad_env_value_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(STREAM_CACHE_ENV, "not-a-number")
        assert StreamCache.max_bytes() == 256 * 1024 * 1024

    def test_clear(self):
        cache = StreamCache()
        cache.put("a", columns(4))
        cache.clear()
        assert len(cache) == 0 and cache.total_bytes == 0
        assert cache.get("a") is None


class TestMaterializeShared:
    def test_none_key_bypasses_cache(self):
        cache = stream_cache()
        cache.clear()
        before = (cache.hits, cache.misses)
        out = materialize_shared(None, 0, lambda: [(0, 1), (1, 2)])
        assert list(out[1]) == [1, 2]
        assert (cache.hits, cache.misses) == before

    def test_factory_called_once_per_key(self):
        cache = stream_cache()
        cache.clear()
        calls = []

        def factory():
            calls.append(1)
            return [(0, 7), (0, 9)]

        first = materialize_shared("wk", 3, factory)
        second = materialize_shared("wk", 3, factory)
        assert len(calls) == 1
        assert second is first
        # A different node of the same workload is a different stream.
        materialize_shared("wk", 4, factory)
        assert len(calls) == 2
        cache.clear()


@pytest.fixture
def params():
    return MachineParams.scaled_down(factor=64, nodes=4, page_size=256)


class TestKeyedByWorkloadNotGridCell:
    """The shared key is ``JobSpec.trace_hash()``: bank geometry and
    timing knobs must not split the cache; stream-shaping knobs must."""

    def test_bank_grids_share_a_key(self, params):
        base = JobSpec.sweep(params, "radix", sizes=(8, 32), max_refs_per_node=100)
        other = JobSpec.sweep(
            params,
            "radix",
            sizes=(16, 64, 256),
            orgs=(Organization.SET_ASSOCIATIVE, Organization.DIRECT_MAPPED),
            max_refs_per_node=100,
        )
        assert base.trace_hash() == other.trace_hash()

    def test_timing_cells_share_the_sweep_key(self, params):
        sweep = JobSpec.sweep(params, "radix", max_refs_per_node=100)
        timing_a = JobSpec.timing(
            params, "V-COMA", "radix", 8, max_refs_per_node=100
        )
        timing_b = JobSpec.timing(
            params,
            "L0-TLB",
            "radix",
            64,
            organization=Organization.DIRECT_MAPPED,
            max_refs_per_node=100,
        )
        assert timing_a.trace_hash() == timing_b.trace_hash()
        # Timing and sweep kinds share streams too (same trace identity).
        assert sweep.trace_hash() == timing_a.trace_hash()

    def test_stream_shaping_knobs_split_the_key(self, params):
        base = JobSpec.sweep(params, "radix", max_refs_per_node=100)
        assert (
            JobSpec.sweep(params, "fft", max_refs_per_node=100).trace_hash()
            != base.trace_hash()
        )
        assert (
            JobSpec.sweep(params, "radix", max_refs_per_node=200).trace_hash()
            != base.trace_hash()
        )
        assert (
            JobSpec.sweep(
                params, "radix", max_refs_per_node=100,
                overrides={"intensity": 0.7},
            ).trace_hash()
            != base.trace_hash()
        )
        other_params = MachineParams.scaled_down(factor=64, nodes=4, page_size=512)
        assert (
            JobSpec.sweep(other_params, "radix", max_refs_per_node=100).trace_hash()
            != base.trace_hash()
        )

    def test_grid_materializes_each_workload_stream_once(self, params):
        """Three bank grids over one workload: one materialization per
        node, the rest are LRU hits."""
        cache = stream_cache()
        cache.clear()
        hits0, misses0 = cache.hits, cache.misses
        specs = [
            JobSpec.sweep(params, "radix", sizes=sizes, max_refs_per_node=100,
                          overrides={"intensity": 0.2})
            for sizes in ((8,), (16, 32), (64,))
        ]
        for spec in specs:
            spec.execute(replay=False)
        new_misses = cache.misses - misses0
        new_hits = cache.hits - hits0
        assert new_misses == params.nodes, "each node's stream cached once"
        assert new_hits == params.nodes * (len(specs) - 1)
        cache.clear()
