"""Workload stream-building helpers (zipf, tree walk, sweeps)."""

import statistics

import pytest

from repro.common.rng import make_rng
from repro.system.refs import READ, WRITE
from repro.vm.segments import Segment
from repro.workloads.base import Workload


@pytest.fixture
def segment():
    return Segment("s", base=0x10000, size=64 * 1024)


def addresses(events):
    return [addr for _, addr in events]


class TestZipf:
    def test_all_addresses_in_segment(self, segment):
        rng = make_rng(0, "z")
        for _, addr in Workload.zipf_accesses(segment, 2000, rng):
            assert segment.contains(addr)

    def test_aligned_to_granularity(self, segment):
        rng = make_rng(0, "z")
        for _, addr in Workload.zipf_accesses(segment, 500, rng, granularity=64):
            assert (addr - segment.base) % 64 == 0

    def test_op_passthrough(self, segment):
        rng = make_rng(0, "z")
        events = list(Workload.zipf_accesses(segment, 10, rng, op=WRITE))
        assert all(op == WRITE for op, _ in events)

    def test_skew_concentrates_distinct_slots(self, segment):
        flat = set(addresses(Workload.zipf_accesses(
            segment, 3000, make_rng(0, "a"), skew=1.0, cluster_bytes=None)))
        hot = set(addresses(Workload.zipf_accesses(
            segment, 3000, make_rng(0, "a"), skew=5.0, cluster_bytes=None)))
        assert len(hot) < len(flat)

    def test_cluster_scatter_preserves_page_level_skew(self, segment):
        """Scattering by whole clusters must keep the number of distinct
        pages the same as the unscattered stream (only their identity
        changes)."""
        page = 512
        plain = Workload.zipf_accesses(
            segment, 3000, make_rng(0, "b"), skew=3.0, cluster_bytes=None
        )
        scattered = Workload.zipf_accesses(
            segment, 3000, make_rng(0, "b"), skew=3.0, cluster_bytes=page
        )
        plain_pages = {a // page for a in addresses(plain)}
        scattered_pages = {a // page for a in addresses(scattered)}
        assert len(scattered_pages) == pytest.approx(len(plain_pages), rel=0.15)

    def test_cluster_scatter_moves_hot_pages_off_segment_head(self, segment):
        page = 512
        scattered = addresses(Workload.zipf_accesses(
            segment, 3000, make_rng(0, "c"), skew=4.0, cluster_bytes=page
        ))
        # The hottest page is (almost surely) not the first page.
        from collections import Counter

        hottest = Counter(a // page for a in scattered).most_common(1)[0][0]
        assert hottest != segment.base // page


class TestTreeWalk:
    def test_bounds_and_alignment(self, segment):
        rng = make_rng(0, "t")
        for _, addr in Workload.tree_walk_accesses(segment, 2000, rng):
            assert segment.contains(addr)
            assert (addr - segment.base) % 64 == 0

    def test_root_is_hottest_without_scatter(self, segment):
        from collections import Counter

        rng = make_rng(0, "t")
        counts = Counter(addresses(Workload.tree_walk_accesses(
            segment, 5000, rng, descend=0.5, cluster_bytes=None
        )))
        root = segment.base  # heap slot 0
        assert counts[root] == max(counts.values())

    def test_level_distribution_geometric(self, segment):
        """Roughly (1-d) of all touches land on the root cell."""
        rng = make_rng(0, "t2")
        events = addresses(Workload.tree_walk_accesses(
            segment, 8000, rng, descend=0.5, cluster_bytes=None
        ))
        root_fraction = sum(1 for a in events if a == segment.base) / len(events)
        assert 0.4 < root_fraction < 0.6

    def test_higher_descend_reaches_more_pages(self, segment):
        shallow = addresses(Workload.tree_walk_accesses(
            segment, 4000, make_rng(0, "t3"), descend=0.3, cluster_bytes=None))
        deep = addresses(Workload.tree_walk_accesses(
            segment, 4000, make_rng(0, "t3"), descend=0.9, cluster_bytes=None))
        assert len(set(deep)) > len(set(shallow))

    def test_deterministic(self, segment):
        a = list(Workload.tree_walk_accesses(segment, 500, make_rng(7, "t")))
        b = list(Workload.tree_walk_accesses(segment, 500, make_rng(7, "t")))
        assert a == b

    def test_tiny_segment(self):
        seg = Segment("tiny", base=0, size=64)
        events = list(Workload.tree_walk_accesses(seg, 50, make_rng(0, "t")))
        assert len(events) == 50
        assert all(a == 0 for _, a in events)


class TestSweeps:
    def test_sequential_sweep_ops_and_stride(self, segment):
        events = list(Workload.sequential_sweep(segment, start=0, length=5, stride=16))
        assert addresses(events) == [segment.base + i * 16 for i in range(5)]
        assert all(op == READ for op, _ in events)

    def test_random_accesses_bounds(self, segment):
        rng = make_rng(0, "r")
        for _, addr in Workload.random_accesses(segment, 500, rng, granularity=8):
            assert segment.contains(addr)
            assert (addr - segment.base) % 8 == 0
