"""Swap daemon (Section 4.3 extension)."""

import pytest

from repro import CapacityError
from repro.vm.page_table import HomePageTable, PageTableEntry
from repro.vm.pressure import PressureTracker
from repro.vm.swap import SwapDaemon


def make_daemon(threshold=0.5, slots=4):
    pressure = PressureTracker(global_page_sets=4, slots_per_set=slots)
    tables = [HomePageTable(0, 4)]
    evicted = []
    daemon = SwapDaemon(pressure, tables, evicted.append, threshold=threshold)
    return daemon, pressure, tables[0], evicted


def add_page(daemon, pressure, table, vpn, referenced=False):
    table.insert(PageTableEntry(vpn=vpn, payload=vpn, referenced=referenced))
    pressure.allocate_page(vpn % 4)
    daemon.note_page_in(vpn)


class TestThreshold:
    def test_under_threshold_no_swap(self):
        daemon, pressure, table, evicted = make_daemon()
        add_page(daemon, pressure, table, 0)
        assert daemon.make_room(0) is None
        assert not evicted

    def test_over_threshold_swaps_one(self):
        daemon, pressure, table, evicted = make_daemon()
        for vpn in (0, 4, 8):  # all color 0 -> pressure 0.75 > 0.5
            add_page(daemon, pressure, table, vpn)
        victim = daemon.make_room(0)
        assert victim in (0, 4, 8)
        assert evicted == [victim]
        assert pressure.occupancy(0) == 2
        assert daemon.swapped_out == 1

    def test_invalid_threshold(self):
        pressure = PressureTracker(4, 4)
        with pytest.raises(ValueError):
            SwapDaemon(pressure, [], lambda v: None, threshold=0.0)


class TestVictimChoice:
    def test_prefers_unreferenced(self):
        daemon, pressure, table, evicted = make_daemon()
        add_page(daemon, pressure, table, 0, referenced=True)
        add_page(daemon, pressure, table, 4, referenced=False)
        add_page(daemon, pressure, table, 8, referenced=True)
        assert daemon.make_room(0) == 4

    def test_fifo_among_unreferenced(self):
        daemon, pressure, table, evicted = make_daemon()
        for vpn in (8, 0, 4):
            add_page(daemon, pressure, table, vpn)
        assert daemon.make_room(0) == 8  # oldest resident

    def test_no_victim_raises(self):
        daemon, pressure, table, evicted = make_daemon()
        pressure.allocate_page(0, count=3)  # pressure without table entries
        with pytest.raises(CapacityError):
            daemon.make_room(0)

    def test_note_page_out_clears_order(self):
        daemon, pressure, table, evicted = make_daemon()
        add_page(daemon, pressure, table, 0)
        daemon.note_page_out(0)
        # Re-entering later gets a fresh arrival stamp.
        daemon.note_page_in(0)
        assert daemon._residence_order[0] == 1
