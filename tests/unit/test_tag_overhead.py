"""Tag-memory overhead analysis (paper §6 figures)."""

import pytest

from repro.analysis.tag_overhead import (
    POWERPC_32,
    POWERPC_64,
    extra_tag_bytes_per_block,
    paper_table,
    render_tag_overhead_table,
    tag_bits,
    tag_overhead_increase,
)


class TestTagBits:
    def test_offset_and_index_removed(self):
        # 32-bit address, 128 B blocks (7 offset bits), 8 sets (3 bits).
        assert tag_bits(32, 128, 8, access_right_bits=0) == 22

    def test_access_rights_added(self):
        assert tag_bits(32, 128, 8, access_right_bits=4) == 26

    def test_single_set_no_index_bits(self):
        assert tag_bits(32, 128, 1, access_right_bits=0) == 25

    def test_never_negative(self):
        assert tag_bits(8, 1024, 1024, access_right_bits=0) == 0


class TestExtraBytes:
    def test_ppc32_is_two_to_three_bytes(self):
        # Paper: "the virtual tag may [be] 2 to 3 bytes longer".
        v, p = POWERPC_32
        extra = extra_tag_bytes_per_block(v, p, 128, sets=1)
        assert 2.0 <= extra <= 3.0

    def test_ppc64_is_two_to_three_bytes(self):
        v, p = POWERPC_64
        extra = extra_tag_bytes_per_block(v, p, 128, sets=1)
        assert 2.0 <= extra <= 3.0


class TestPaperRanges:
    """The paper's quoted overhead ranges per block size."""

    @pytest.mark.parametrize(
        "block,low,high",
        [(128, 0.015, 0.025), (64, 0.03, 0.045), (32, 0.06, 0.09)],
    )
    def test_overhead_in_paper_range(self, block, low, high):
        table = paper_table()
        for isa in ("ppc32", "ppc64"):
            value = table[(isa, block)]
            assert low * 0.8 <= value <= high * 1.2, (isa, block, value)

    def test_overhead_halves_with_double_block(self):
        table = paper_table()
        for isa in ("ppc32", "ppc64"):
            assert table[(isa, 64)] == pytest.approx(table[(isa, 128)] * 2, rel=0.01)
            assert table[(isa, 32)] == pytest.approx(table[(isa, 64)] * 2, rel=0.01)

    def test_render_contains_all_blocks(self):
        text = render_tag_overhead_table()
        for token in ("128 B", "64 B", "32 B", "ppc32", "ppc64"):
            assert token in text


class TestGenericGeometry:
    def test_more_sets_do_not_change_difference(self):
        # Index bits cancel between virtual and physical tags.
        v, p = POWERPC_32
        a = tag_overhead_increase(v, p, 128, sets=1)
        b = tag_overhead_increase(v, p, 128, sets=4096)
        assert a == pytest.approx(b)

    def test_wider_virtual_address_costs_more(self):
        narrow = tag_overhead_increase(48, 40, 128, sets=1)
        wide = tag_overhead_increase(64, 40, 128, sets=1)
        assert wide > narrow
