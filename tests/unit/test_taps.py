"""StudyAgent and TimingAgent behaviour."""

import pytest

from repro import MachineParams, Organization, Scheme, TapPoint
from repro.system.taps import StudyAgent, TimingAgent


@pytest.fixture
def agent(small_params):
    return StudyAgent(small_params, sizes=(4, 16), orgs=(Organization.FULLY_ASSOCIATIVE,))


class TestStudyAgent:
    def test_never_charges(self, agent):
        assert agent.at_l0(0, 1) == 0
        assert agent.at_l1(0, 1) == 0
        assert agent.at_l2(0, 1) == 0
        assert agent.at_l3(0, 1) == 0
        assert agent.at_home(0, 1) == 0

    def test_counts_total_references_at_l0(self, agent):
        for vpn in range(5):
            agent.at_l0(0, vpn)
        assert agent.total_references == 5

    def test_results_sum_over_nodes(self, agent):
        agent.at_l0(0, 1)
        agent.at_l0(1, 2)
        study = agent.results()
        assert study.misses(TapPoint.L0, 4) == 2
        assert study.accesses(TapPoint.L0) == 2

    def test_no_wback_excludes_writebacks(self, agent):
        agent.at_l2(0, 1, writeback=False)
        agent.at_l2(0, 2, writeback=True)
        study = agent.results()
        assert study.accesses(TapPoint.L2) == 2
        assert study.accesses(TapPoint.L2_NO_WBACK) == 1

    def test_home_tap_keyed_by_home_node(self, agent, small_params):
        for _ in range(3):
            agent.at_home(2, 7)
        study = agent.results()
        # Same page re-accessed at one home: 1 cold miss only.
        assert study.misses(TapPoint.HOME, 4) == 1

    def test_miss_rate_uses_processor_references(self, agent):
        agent.at_l0(0, 1)
        agent.at_l0(0, 1)
        agent.at_l3(0, 5)
        study = agent.results()
        assert study.miss_rate(TapPoint.L3, 4) == pytest.approx(0.5)

    def test_misses_per_node(self, agent, small_params):
        agent.at_l0(0, 1)
        study = agent.results()
        assert study.misses_per_node(TapPoint.L0, 4) == pytest.approx(
            1 / small_params.nodes
        )

    def test_curve_sorted_by_size(self, agent):
        agent.at_l0(0, 1)
        curve = agent.results().curve(TapPoint.L0)
        assert [size for size, _ in curve] == [4, 16]

    def test_larger_buffer_never_worse(self, small_params):
        agent = StudyAgent(small_params, sizes=(4, 64))
        import random

        rng = random.Random(0)
        for _ in range(3000):
            agent.at_l0(0, rng.randrange(30))
        study = agent.results()
        assert study.misses(TapPoint.L0, 64) <= study.misses(TapPoint.L0, 4)


class TestTimingAgent:
    def test_charges_only_at_its_level(self, small_params):
        agent = TimingAgent(small_params, Scheme.L2_TLB, entries=4)
        assert agent.at_l0(0, 1) == 0
        assert agent.at_l1(0, 1) == 0
        assert agent.at_l3(0, 1) == 0
        assert agent.at_home(0, 1) == 0
        assert agent.at_l2(0, 1) == small_params.translation_miss_penalty
        assert agent.at_l2(0, 1) == 0  # now cached

    def test_l0_scheme(self, small_params):
        agent = TimingAgent(small_params, Scheme.L0_TLB, entries=4)
        assert agent.at_l0(0, 1) == small_params.translation_miss_penalty
        assert agent.at_l0(0, 1) == 0

    def test_vcoma_charges_at_home(self, small_params):
        agent = TimingAgent(small_params, Scheme.V_COMA, entries=4)
        assert agent.at_home(2, 1) == small_params.translation_miss_penalty
        assert agent.at_home(2, 1) == 0
        # Different home: separate DLB, cold again.
        assert agent.at_home(3, 1) == small_params.translation_miss_penalty

    def test_vcoma_shared_across_requesters(self, small_params):
        # The DLB is per home; any requester benefits from the fill.
        agent = TimingAgent(small_params, Scheme.V_COMA, entries=4)
        agent.at_home(2, 9)
        assert agent.at_home(2, 9) == 0

    def test_per_node_tlbs_do_not_share(self, small_params):
        agent = TimingAgent(small_params, Scheme.L0_TLB, entries=4)
        agent.at_l0(0, 9)
        assert agent.at_l0(1, 9) == small_params.translation_miss_penalty

    def test_writeback_bypass_option(self, small_params):
        agent = TimingAgent(
            small_params, Scheme.L2_TLB, entries=4, include_l2_writebacks=False
        )
        assert agent.at_l2(0, 1, writeback=True) == 0
        assert agent.buffer(0).accesses == 0

    def test_statistics(self, small_params):
        agent = TimingAgent(small_params, Scheme.L0_TLB, entries=4)
        agent.at_l0(0, 1)
        agent.at_l0(0, 1)
        assert agent.total_accesses == 2
        assert agent.total_misses == 1

    def test_direct_mapped_organization(self, small_params):
        agent = TimingAgent(
            small_params, Scheme.L0_TLB, entries=4, organization=Organization.DIRECT_MAPPED
        )
        agent.at_l0(0, 0)
        assert agent.at_l0(0, 4) == small_params.translation_miss_penalty  # conflict
        assert agent.at_l0(0, 0) == small_params.translation_miss_penalty
