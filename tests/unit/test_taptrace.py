"""Unit tests for the tap-trace format and the persistent trace store.

Covers the columnar binary round trip (write → read → replay), the
corruption taxonomy (bad magic, bad format, truncated header, truncated
payload, flipped payload bytes, mangled header JSON — every one a
:class:`TraceError`, never a crash or silent wrong answer), and the
:class:`TraceStore`'s miss/hit/eviction behaviour including recovery
from corrupt files on disk.
"""

import struct

import pytest

from repro import MachineParams
from repro.core.schemes import TapPoint
from repro.core.tlb import Organization
from repro.runner import JobSpec, TraceStore
from repro.system.taptrace import (
    TRACE_FORMAT,
    TRACE_MAGIC,
    TapTraceSet,
    TraceError,
    capture_tap_traces,
    replay_study,
    replay_summary,
)


@pytest.fixture(scope="module")
def params():
    return MachineParams.scaled_down(factor=256, nodes=2, page_size=256)


@pytest.fixture(scope="module")
def spec(params):
    return JobSpec.sweep(
        params,
        "radix",
        sizes=(8, 32),
        orgs=(Organization.FULLY_ASSOCIATIVE, Organization.DIRECT_MAPPED),
        max_refs_per_node=300,
        overrides={"intensity": 0.2},
    )


@pytest.fixture(scope="module")
def traces(params, spec):
    return capture_tap_traces(params, spec.build_workload(), max_refs_per_node=300)


class TestRoundTrip:
    def test_bytes_round_trip_is_stable(self, traces):
        blob = traces.to_bytes()
        again = TapTraceSet.from_bytes(blob)
        assert again.to_bytes() == blob
        assert again.nodes == traces.nodes
        assert again.seed == traces.seed
        assert again.total_references == traces.total_references
        assert again.base.to_dict() == traces.base.to_dict()

    def test_streams_survive_round_trip(self, traces):
        again = TapTraceSet.from_bytes(traces.to_bytes())
        assert set(again.streams) == set(traces.streams)
        for key, column in traces.streams.items():
            assert list(again.streams[key]) == list(column)

    def test_replay_from_round_tripped_trace(self, traces, spec):
        """write → read → replay equals replay from the live capture."""
        again = TapTraceSet.from_bytes(traces.to_bytes())
        orgs = tuple(Organization(value) for value in spec.orgs)
        live = replay_study(traces, spec.sizes, orgs)
        loaded = replay_study(again, spec.sizes, orgs)
        assert loaded.to_dict() == live.to_dict()

    def test_replay_summary_carries_base_surface(self, traces, spec):
        orgs = tuple(Organization(value) for value in spec.orgs)
        summary = replay_summary(traces, spec.sizes, orgs)
        assert summary.total_time == traces.base.total_time
        assert summary.counters == traces.base.counters
        assert summary.study_results() is not None

    def test_wide_pages_use_eight_byte_columns(self, traces):
        """Streams with ≥2**32 page numbers round-trip losslessly."""
        from array import array

        wide = TapTraceSet(
            nodes=1,
            seed=traces.seed,
            total_references=3,
            streams={(TapPoint.L0.value, 0): array("Q", [1, 1 << 40, 7])},
            base=traces.base,
        )
        again = TapTraceSet.from_bytes(wide.to_bytes())
        assert list(again.stream(TapPoint.L0, 0)) == [1, 1 << 40, 7]


class TestCorruption:
    def test_bad_magic(self, traces):
        blob = b"XXXX" + traces.to_bytes()[4:]
        with pytest.raises(TraceError):
            TapTraceSet.from_bytes(blob)

    def test_empty_and_short_blobs(self):
        for blob in (b"", b"RT", TRACE_MAGIC, TRACE_MAGIC + b"\x00"):
            with pytest.raises(TraceError):
                TapTraceSet.from_bytes(blob)

    def test_unsupported_format_version(self, traces):
        blob = bytearray(traces.to_bytes())
        struct.pack_into("<I", blob, len(TRACE_MAGIC), TRACE_FORMAT + 1)
        with pytest.raises(TraceError):
            TapTraceSet.from_bytes(bytes(blob))

    def test_truncated_header(self, traces):
        blob = traces.to_bytes()
        with pytest.raises(TraceError):
            TapTraceSet.from_bytes(blob[: len(TRACE_MAGIC) + 8 + 5])

    def test_truncated_payload(self, traces):
        blob = traces.to_bytes()
        with pytest.raises(TraceError):
            TapTraceSet.from_bytes(blob[:-1])

    def test_flipped_payload_byte_fails_checksum(self, traces):
        blob = bytearray(traces.to_bytes())
        blob[-1] ^= 0xFF
        with pytest.raises(TraceError):
            TapTraceSet.from_bytes(bytes(blob))

    def test_mangled_header_json(self, traces):
        blob = traces.to_bytes()
        prefix = len(TRACE_MAGIC) + 8
        mangled = blob[:prefix] + b"?" + blob[prefix + 1 :]
        with pytest.raises(TraceError):
            TapTraceSet.from_bytes(mangled)


class TestTraceHash:
    def test_invariant_to_bank_configuration(self, params):
        """sizes/orgs (and label) are excluded: one trace, many banks."""
        base = JobSpec.sweep(params, "radix", sizes=(8, 32), max_refs_per_node=300)
        other = JobSpec.sweep(
            params,
            "radix",
            sizes=(16, 64, 256),
            orgs=(Organization.SET_ASSOCIATIVE,),
            max_refs_per_node=300,
            label="same trace",
        )
        assert base.trace_hash() == other.trace_hash()

    def test_sensitive_to_hierarchy_identity(self, params):
        base = JobSpec.sweep(params, "radix", max_refs_per_node=300)
        other_params = MachineParams.scaled_down(
            factor=256, nodes=2, page_size=256, seed=99
        )
        assert base.trace_hash() != JobSpec.sweep(
            params, "fft", max_refs_per_node=300
        ).trace_hash()
        assert base.trace_hash() != JobSpec.sweep(
            other_params, "radix", max_refs_per_node=300
        ).trace_hash()
        assert base.trace_hash() != JobSpec.sweep(
            params, "radix", max_refs_per_node=200
        ).trace_hash()
        assert base.trace_hash() != JobSpec.sweep(
            params, "radix", max_refs_per_node=300, overrides={"intensity": 0.4}
        ).trace_hash()

    def test_folds_in_version(self, params):
        spec = JobSpec.sweep(params, "radix", max_refs_per_node=300)
        assert spec.trace_hash(version="1.0") != spec.trace_hash(version="2.0")


class TestTraceStore:
    def test_miss_then_hit(self, tmp_path, spec, traces):
        store = TraceStore(root=tmp_path)
        assert store.get(spec) is None
        assert not store.contains(spec)
        path = store.put(spec, traces)
        assert path.is_file()
        assert store.contains(spec)
        loaded = store.get(spec)
        assert loaded is not None
        assert loaded.to_bytes() == traces.to_bytes()
        assert store.hits == 1 and store.misses == 1
        assert len(store) == 1
        assert store.total_bytes() == path.stat().st_size

    def test_corrupt_file_treated_as_miss_and_removed(self, tmp_path, spec, traces):
        store = TraceStore(root=tmp_path)
        path = store.put(spec, traces)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.warns(RuntimeWarning, match="corrupt tap trace"):
            assert store.get(spec) is None
        assert not path.exists()
        assert store.corrupt_dropped == 1
        assert store.misses == 1

    def test_corruption_is_counted_not_silent(self, tmp_path, spec, traces):
        """Every corruption-taxonomy shape increments corrupt_dropped
        and warns; a clean miss (absent file) does neither."""
        store = TraceStore(root=tmp_path)
        assert store.get(spec) is None  # plain miss: no warning
        assert store.corrupt_dropped == 0
        blob = traces.to_bytes()
        for mangle in (
            lambda b: b"XXXX" + b[4:],            # bad magic
            lambda b: b[: len(TRACE_MAGIC) + 10],  # truncated header
            lambda b: b[:-1],                      # truncated payload
            lambda b: b[:-1] + bytes([b[-1] ^ 0xFF]),  # flipped byte
        ):
            path = store.put(spec, traces)
            path.write_bytes(mangle(blob))
            with pytest.warns(RuntimeWarning, match="re-recording"):
                assert store.get(spec) is None
            assert not path.exists(), "corrupt file must be quarantined"
        assert store.corrupt_dropped == 4

    def test_lru_eviction_keeps_recently_used(self, tmp_path, params, traces):
        specs = [
            JobSpec.sweep(params, "radix", max_refs_per_node=refs)
            for refs in (100, 200, 300)
        ]
        store = TraceStore(root=tmp_path)
        entry_size = len(traces.to_bytes())
        paths = [store.put(spec, traces) for spec in specs]
        import os

        for age, path in enumerate(paths):
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        # Cap to two entries: the next put must evict the oldest mtime.
        store.max_bytes = int(entry_size * 2.5)
        newest = JobSpec.sweep(params, "radix", max_refs_per_node=400)
        store.put(newest, traces)
        assert not paths[0].exists(), "oldest entry should be evicted"
        assert store.contains(newest)

    def test_clear(self, tmp_path, spec, traces):
        store = TraceStore(root=tmp_path)
        store.put(spec, traces)
        assert store.clear() == 1
        assert len(store) == 0
