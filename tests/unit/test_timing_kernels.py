"""Unit tests for the columnar timing-kernel helpers.

The epoch slicer is the contract between the Python driver and the
compiled engine: ``max_refs_per_node`` truncation must land on exactly
the reference the scalar simulator would have stopped at, and a sync
op sitting exactly at the truncation point must NOT be executed (the
scalar loop checks ``refs_done`` before consuming the sync).  Getting
any of these boundaries wrong shifts every downstream barrier/lock
interaction, so they get exhaustive coverage here, independent of the
heavyweight differential suite.
"""

import array
import random

import pytest

from repro.core.replay import NO_NUMPY_ENV, get_numpy
from repro.core.timing_kernels import (
    EPOCH_END,
    EPOCH_TRUNCATED,
    RNG_STATE_WORDS,
    backend_status,
    epoch_spans,
    get_backend,
    load_rng_state,
    materialize_stream,
    rng_state_words,
    sync_positions,
)
from repro.system.refs import BARRIER, LOCK, READ, UNLOCK, WRITE

R, W, B, L, U = READ, WRITE, BARRIER, LOCK, UNLOCK


class TestEpochSpans:
    def test_no_syncs(self):
        assert epoch_spans([R, W, R]) == [(0, 3, EPOCH_END)]

    def test_empty_stream(self):
        assert epoch_spans([]) == [(0, 0, EPOCH_END)]

    def test_sync_at_start(self):
        assert epoch_spans([B, R, R]) == [(0, 0, 0), (1, 3, EPOCH_END)]

    def test_sync_at_end(self):
        assert epoch_spans([R, R, B]) == [(0, 2, 2), (3, 3, EPOCH_END)]

    def test_adjacent_syncs(self):
        assert epoch_spans([R, B, L, W, U]) == [
            (0, 1, 1),
            (2, 2, 2),
            (3, 4, 4),
            (5, 5, EPOCH_END),
        ]

    def test_truncation_before_first_sync(self):
        assert epoch_spans([R, R, R, B, R], max_refs=2) == [(0, 2, EPOCH_TRUNCATED)]

    def test_truncation_exactly_at_sync(self):
        # 2 refs then a barrier: with max_refs=2 the barrier is NOT
        # executed — the scalar loop finishes the node before consuming
        # the sync op, so the span must say TRUNCATED, not boundary=2.
        assert epoch_spans([R, W, B, R], max_refs=2) == [(0, 2, EPOCH_TRUNCATED)]

    def test_truncation_spanning_epochs(self):
        # 1 ref, barrier, then the cut lands inside the second epoch.
        assert epoch_spans([R, B, W, W, W], max_refs=2) == [
            (0, 1, 1),
            (2, 3, EPOCH_TRUNCATED),
        ]

    def test_truncation_exactly_at_stream_end(self):
        # max_refs equals the total reference count: the node finishes
        # naturally — EPOCH_END, not TRUNCATED.
        assert epoch_spans([R, W, R], max_refs=3) == [(0, 3, EPOCH_END)]

    def test_truncation_exactly_at_stream_end_after_sync(self):
        assert epoch_spans([R, B, W], max_refs=2) == [
            (0, 1, 1),
            (2, 3, EPOCH_END),
        ]

    def test_truncation_one_past_stream_end(self):
        assert epoch_spans([R, W], max_refs=5) == [(0, 2, EPOCH_END)]

    def test_max_refs_zero(self):
        assert epoch_spans([R, W], max_refs=0) == [(0, 0, EPOCH_TRUNCATED)]

    def test_spans_partition_the_stream(self):
        ops = [R, W, B, R, L, W, U, R, R, B, W]
        spans = epoch_spans(ops)
        # Consecutive spans tile the stream; each boundary is the sync
        # op between them.
        assert spans[0][0] == 0
        for (s0, e0, b0), (s1, _, _) in zip(spans, spans[1:]):
            assert b0 == e0
            assert s1 == e0 + 1
        assert spans[-1] == (10, 11, EPOCH_END)

    def test_columnar_input(self):
        ops, _ = materialize_stream([(R, 0), (B, 1), (W, 2)])
        assert epoch_spans(ops) == [(0, 1, 1), (2, 3, EPOCH_END)]


class TestSyncPositions:
    def test_basic(self):
        assert sync_positions([R, B, W, L, U, R]) == [1, 3, 4]

    def test_none(self):
        assert sync_positions([R, W, R]) == []

    @pytest.mark.skipif(get_numpy() is None, reason="numpy unavailable")
    def test_numpy_matches_fallback(self, monkeypatch):
        ops = [random.Random(7).choice([R, W, B, L, U]) for _ in range(500)]
        with_numpy = sync_positions(array.array("B", ops))
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        assert sync_positions(array.array("B", ops)) == with_numpy


class TestMaterializeStream:
    def test_columns(self):
        ops, vals = materialize_stream([(R, 4096), (W, -1), (B, 3)])
        assert list(ops) == [R, W, B]
        assert list(vals) == [4096, -1, 3]
        # Both columns must expose the buffer protocol for ffi.from_buffer.
        assert memoryview(ops).itemsize == 1
        assert memoryview(vals).itemsize == 8

    def test_empty(self):
        ops, vals = materialize_stream(iter(()))
        assert len(ops) == 0 and len(vals) == 0

    @pytest.mark.skipif(get_numpy() is None, reason="numpy unavailable")
    def test_fallback_matches_numpy(self, monkeypatch):
        stream = [(W, i * 64) for i in range(100)] + [(B, 0)]
        np_ops, np_vals = materialize_stream(iter(stream))
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        py_ops, py_vals = materialize_stream(iter(stream))
        assert isinstance(py_ops, array.array)
        assert list(py_ops) == list(np_ops)
        assert list(py_vals) == list(np_vals)


class TestRngMarshalling:
    def test_round_trip_preserves_sequence(self):
        rng = random.Random(1234)
        rng.random()  # advance off the seed point
        words = rng_state_words(rng)
        assert len(words) == RNG_STATE_WORDS
        expected = [rng.getrandbits(32) for _ in range(10)]
        fresh = random.Random()
        load_rng_state(fresh, words)
        assert [fresh.getrandbits(32) for _ in range(10)] == expected

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            load_rng_state(random.Random(), array.array("I", [0] * 10))

    def test_rejects_pending_gauss(self):
        rng = random.Random(5)
        rng.gauss(0, 1)  # leaves a cached second variate in the state
        with pytest.raises(ValueError):
            rng_state_words(rng)


needs_backend = pytest.mark.skipif(
    get_backend() is None, reason=f"compiled backend unavailable: {backend_status()}"
)


@needs_backend
class TestCompiledMersenneTwister:
    """The C engine must continue the exact CPython draw sequence."""

    def test_genrand_matches_cpython(self):
        backend = get_backend()
        rng = random.Random(98_08)  # the paper's tech-report number
        words = rng_state_words(rng)
        n = 1000
        out = backend.ffi.new("uint32_t[]", n)
        state = backend.ffi.from_buffer("uint32_t[]", words)
        backend.lib.fs_rng_selftest(state, out, n)
        assert list(out) == [rng.getrandbits(32) for _ in range(n)]

    def test_shuffle_matches_cpython(self):
        backend = get_backend()
        for seed in (0, 1, 42):
            rng = random.Random(seed)
            words = rng_state_words(rng)
            n = 97
            arr = backend.ffi.new("int32_t[]", list(range(n)))
            state = backend.ffi.from_buffer("uint32_t[]", words)
            backend.lib.fs_shuffle_selftest(state, arr, n)
            expected = list(range(n))
            rng.shuffle(expected)
            assert list(arr) == expected
