"""TranslationBuffer (TLB/DLB model) behaviour."""

import random

import pytest

from repro import ConfigurationError, Organization, TranslationBank, TranslationBuffer


class TestConstruction:
    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            TranslationBuffer(12)

    def test_entries_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TranslationBuffer(0)

    def test_fully_associative_single_set(self):
        tlb = TranslationBuffer(8)
        assert tlb.sets == 1 and tlb.assoc == 8

    def test_direct_mapped_one_way(self):
        tlb = TranslationBuffer(8, Organization.DIRECT_MAPPED)
        assert tlb.sets == 8 and tlb.assoc == 1

    def test_set_associative_requires_valid_assoc(self):
        with pytest.raises(ConfigurationError):
            TranslationBuffer(8, Organization.SET_ASSOCIATIVE)
        with pytest.raises(ConfigurationError):
            TranslationBuffer(8, Organization.SET_ASSOCIATIVE, assoc=3)
        tlb = TranslationBuffer(8, Organization.SET_ASSOCIATIVE, assoc=2)
        assert tlb.sets == 4


class TestAccess:
    def test_first_access_misses_then_hits(self):
        tlb = TranslationBuffer(4)
        assert tlb.access(1) is False
        assert tlb.access(1) is True
        assert tlb.misses == 1 and tlb.hits == 1

    def test_capacity_eviction(self):
        tlb = TranslationBuffer(2, rng=random.Random(0))
        tlb.access(1)
        tlb.access(2)
        tlb.access(3)  # evicts one of {1, 2}
        assert tlb.valid_entries == 2
        assert tlb.contains(3)
        assert tlb.contains(1) != tlb.contains(2)

    def test_miss_rate(self):
        tlb = TranslationBuffer(4)
        for page in (1, 2, 1, 2):
            tlb.access(page)
        assert tlb.miss_rate == pytest.approx(0.5)

    def test_direct_mapped_conflict(self):
        tlb = TranslationBuffer(4, Organization.DIRECT_MAPPED)
        assert tlb.access(0) is False
        assert tlb.access(4) is False  # same slot (page % 4)
        assert tlb.access(0) is False  # got evicted
        assert tlb.misses == 3

    def test_direct_mapped_no_conflict_distinct_slots(self):
        tlb = TranslationBuffer(4, Organization.DIRECT_MAPPED)
        for page in range(4):
            tlb.access(page)
        assert all(tlb.contains(p) for p in range(4))

    def test_fully_associative_holds_working_set(self):
        tlb = TranslationBuffer(8)
        for page in range(8):
            tlb.access(page)
        for page in range(8):
            assert tlb.access(page) is True

    def test_probe_does_not_install(self):
        tlb = TranslationBuffer(4)
        assert tlb.probe(9) is False
        assert not tlb.contains(9)
        assert tlb.misses == 1

    def test_random_replacement_deterministic_with_seed(self):
        def run():
            tlb = TranslationBuffer(4, rng=random.Random(7))
            for page in range(100):
                tlb.access(page % 13)
            return tlb.misses

        assert run() == run()


class TestInvalidateAndFlush:
    def test_invalidate_present(self):
        tlb = TranslationBuffer(4)
        tlb.access(5)
        assert tlb.invalidate(5) is True
        assert not tlb.contains(5)

    def test_invalidate_absent(self):
        assert TranslationBuffer(4).invalidate(5) is False

    def test_invalidate_keeps_others(self):
        tlb = TranslationBuffer(4)
        for p in (1, 2, 3):
            tlb.access(p)
        tlb.invalidate(2)
        assert tlb.contains(1) and tlb.contains(3)
        # Freed slot is reusable without evicting anything.
        tlb.access(4)
        assert tlb.contains(1) and tlb.contains(3) and tlb.contains(4)

    def test_flush_empties(self):
        tlb = TranslationBuffer(4)
        for p in range(4):
            tlb.access(p)
        tlb.flush()
        assert tlb.valid_entries == 0
        assert not any(tlb.contains(p) for p in range(4))

    def test_reset_stats(self):
        tlb = TranslationBuffer(4)
        tlb.access(1)
        tlb.reset_stats()
        assert tlb.accesses == 0 and tlb.misses == 0
        assert tlb.contains(1)  # contents survive


class TestBank:
    def test_bank_feeds_all_configs(self):
        bank = TranslationBank(
            [(4, Organization.FULLY_ASSOCIATIVE), (8, Organization.DIRECT_MAPPED)]
        )
        for page in range(20):
            bank.access(page)
        assert bank.accesses == 20
        assert bank.misses(4) == 20  # all cold, FA/4
        assert bank.misses(8, Organization.DIRECT_MAPPED) == 20

    def test_bigger_fa_buffer_never_misses_more(self):
        bank = TranslationBank(
            [(4, Organization.FULLY_ASSOCIATIVE), (64, Organization.FULLY_ASSOCIATIVE)]
        )
        rng = random.Random(3)
        for _ in range(2000):
            bank.access(rng.randrange(40))
        assert bank.misses(64) <= bank.misses(4)

    def test_results_keys(self):
        bank = TranslationBank([(4, Organization.FULLY_ASSOCIATIVE)])
        bank.access(1)
        assert bank.results() == {(4, "fa"): 1}

    def test_duplicate_configs_collapse(self):
        bank = TranslationBank(
            [(4, Organization.FULLY_ASSOCIATIVE), (4, Organization.FULLY_ASSOCIATIVE)]
        )
        assert len(bank.buffers) == 1


class TestBankSetAssociative:
    def test_sa_members_built_with_ways(self):
        bank = TranslationBank([(16, Organization.SET_ASSOCIATIVE)])
        buffer = bank.buffers[(16, Organization.SET_ASSOCIATIVE)]
        assert buffer.assoc == TranslationBank.SET_ASSOC_WAYS
        assert buffer.sets == 16 // TranslationBank.SET_ASSOC_WAYS

    def test_sa_capped_by_entries(self):
        bank = TranslationBank([(2, Organization.SET_ASSOCIATIVE)])
        assert bank.buffers[(2, Organization.SET_ASSOCIATIVE)].assoc == 2

    def test_sa_between_fa_and_dm_on_conflicty_stream(self):
        import random

        bank = TranslationBank(
            [
                (16, Organization.FULLY_ASSOCIATIVE),
                (16, Organization.SET_ASSOCIATIVE),
                (16, Organization.DIRECT_MAPPED),
            ]
        )
        rng = random.Random(0)
        hot = [i * 16 for i in range(12)]  # collide mod 16
        for _ in range(4000):
            bank.access(rng.choice(hot))
        fa = bank.misses(16, Organization.FULLY_ASSOCIATIVE)
        sa = bank.misses(16, Organization.SET_ASSOCIATIVE)
        dm = bank.misses(16, Organization.DIRECT_MAPPED)
        assert fa <= sa <= dm
