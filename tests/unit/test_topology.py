"""Interconnect topologies."""

import pytest

from repro import ConfigurationError, MachineParams
from repro.interconnect import (
    Crossbar,
    CrossbarTopology,
    Mesh2DTopology,
    MessageKind,
    RingTopology,
    make_topology,
)


class TestCrossbarTopology:
    def test_all_pairs_one_hop(self):
        topo = CrossbarTopology(8)
        assert all(topo.hops(0, d) == 1 for d in range(1, 8))
        assert topo.hops(3, 3) == 0
        assert topo.diameter() == 1


class TestRingTopology:
    def test_shorter_way_round(self):
        topo = RingTopology(8)
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 7) == 1  # wraps
        assert topo.hops(0, 4) == 4
        assert topo.hops(6, 2) == 4

    def test_symmetry(self):
        topo = RingTopology(8)
        for s in range(8):
            for d in range(8):
                assert topo.hops(s, d) == topo.hops(d, s)

    def test_diameter(self):
        assert RingTopology(8).diameter() == 4
        assert RingTopology(7).diameter() == 3


class TestMeshTopology:
    def test_square_grid(self):
        topo = Mesh2DTopology(16)
        assert (topo.width, topo.height) == (4, 4)
        assert topo.hops(0, 15) == 6  # (0,0)->(3,3)
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 4) == 1  # next row

    def test_non_square_node_count(self):
        topo = Mesh2DTopology(8)
        assert topo.width * topo.height == 8
        assert topo.diameter() >= 2

    def test_manhattan_symmetry(self):
        topo = Mesh2DTopology(16)
        for s in range(16):
            for d in range(16):
                assert topo.hops(s, d) == topo.hops(d, s)


class TestFactoryAndStats:
    def test_make_topology(self):
        assert make_topology("ring", 4).name == "ring"
        assert make_topology("MESH2D", 4).name == "mesh2d"

    def test_unknown_topology(self):
        with pytest.raises(ConfigurationError):
            make_topology("torus", 4)

    def test_average_distance_ordering(self):
        # Crossbar <= mesh <= ring for 16 nodes.
        xbar = CrossbarTopology(16).average_distance()
        mesh = Mesh2DTopology(16).average_distance()
        ring = RingTopology(16).average_distance()
        assert xbar <= mesh <= ring

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            RingTopology(4).hops(0, 4)


class TestCrossbarIntegration:
    def test_extra_hops_cost_router_latency(self, small_params):
        topo = RingTopology(small_params.nodes)
        xbar = Crossbar(small_params, topology=topo)
        near = xbar.cycles_for(MessageKind.READ_REQUEST, 0, 1)
        far = xbar.cycles_for(MessageKind.READ_REQUEST, 0, 2)
        assert far == near + small_params.router_latency_cycles

    def test_no_topology_means_flat(self, small_params):
        xbar = Crossbar(small_params)
        assert xbar.cycles_for(MessageKind.READ_REQUEST, 0, 1) == xbar.cycles_for(
            MessageKind.READ_REQUEST, 0, 3
        )

    def test_machine_accepts_topology(self, small_params):
        from repro import CustomWorkload, Machine, Scheme, SegmentSpec, Simulator
        from repro.system.refs import READ

        def stream(node, ctx):
            yield READ, ctx.segment("data").base

        workload = CustomWorkload(
            [SegmentSpec("data", 8 * small_params.page_size)], stream, name="t"
        )
        flat = Machine(small_params, Scheme.V_COMA, workload)
        ring = Machine(small_params, Scheme.V_COMA, workload, topology="ring")
        t_flat = Simulator(flat).run().total_time
        t_ring = Simulator(ring).run().total_time
        assert t_ring >= t_flat
