"""Trace recording and replay."""

import io

import pytest

from repro import (
    CustomWorkload,
    Machine,
    MachineParams,
    ReproError,
    Scheme,
    SegmentSpec,
    Simulator,
    make_workload,
)
from repro.system.refs import BARRIER, LOCK, READ, UNLOCK, WRITE
from repro.workloads import TraceWorkload, record_trace


def record(params, workload, max_refs=None):
    machine = Machine(params, Scheme.V_COMA, workload)
    buffer = io.StringIO()
    written = record_trace(workload, machine.ctx, buffer, max_refs_per_node=max_refs)
    return buffer.getvalue(), written


class TestRecord:
    def test_header_and_counts(self, small_params):
        workload = make_workload("barnes", intensity=0.1)
        text, written = record(small_params, workload, max_refs=50)
        assert text.startswith("#repro-trace v1 nodes=4")
        data_lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(data_lines) == written
        assert written <= 50 * small_params.nodes

    def test_segment_metadata_recorded(self, small_params):
        workload = make_workload("ocean", intensity=0.1)
        text, _ = record(small_params, workload, max_refs=20)
        assert "#segment grid_a" in text

    def test_all_opcodes_representable(self, small_params):
        def stream(node, ctx):
            base = ctx.segment("data").base
            yield READ, base
            yield WRITE, base + 8
            yield LOCK, base
            yield UNLOCK, base
            yield BARRIER, 0

        workload = CustomWorkload(
            [SegmentSpec("data", 4 * small_params.page_size)], stream, name="ops"
        )
        text, written = record(small_params, workload)
        assert written == 5 * small_params.nodes
        for code in (" R ", " W ", " L ", " U ", " B "):
            assert code in text


class TestReplay:
    def test_roundtrip_preserves_stream_shape(self, small_params):
        workload = make_workload("barnes", intensity=0.1)
        text, written = record(small_params, workload, max_refs=200)
        replayed = TraceWorkload(text)
        machine = Machine(small_params, Scheme.V_COMA, replayed)
        streams = [list(machine.node_stream(n)) for n in range(small_params.nodes)]
        assert sum(len(s) for s in streams) == written
        # Same op sequence per node as the recorded one.
        original = Machine(small_params, Scheme.V_COMA, workload)
        import itertools

        first_orig = [
            op for op, _ in itertools.islice(workload.node_stream(0, original.ctx), 200)
        ]
        first_replay = [op for op, _ in streams[0]]
        assert first_replay == first_orig[: len(first_replay)]

    def test_replay_runs_through_simulator(self, small_params):
        workload = make_workload("fft", intensity=0.1)
        text, _ = record(small_params, workload, max_refs=300)
        replayed = TraceWorkload(text)
        machine = Machine(small_params, Scheme.L0_TLB, replayed)
        result = Simulator(machine).run()
        machine.engine.check_invariants()
        assert result.total_references > 0

    def test_page_collision_structure_preserved(self, small_params):
        """Two addresses on the same page in the trace stay on the same
        page after rebasing; distinct pages stay distinct."""
        page = small_params.page_size

        def stream(node, ctx):
            base = ctx.segment("data").base
            yield READ, base + 1
            yield READ, base + page - 1
            yield READ, base + page

        workload = CustomWorkload(
            [SegmentSpec("data", 4 * small_params.page_size)], stream, name="pg"
        )
        text, _ = record(small_params, workload)
        replayed = TraceWorkload(text)
        machine = Machine(small_params, Scheme.V_COMA, replayed)
        addrs = [a for _, a in machine.node_stream(0)]
        assert addrs[0] // page == addrs[1] // page
        assert addrs[2] // page == addrs[0] // page + 1

    def test_fewer_machine_nodes_rejected(self, small_params):
        workload = make_workload("barnes", intensity=0.1)
        text, _ = record(small_params, workload, max_refs=20)
        tiny = MachineParams.scaled_down(factor=256, nodes=2, page_size=256)
        with pytest.raises(ReproError):
            Machine(tiny, Scheme.V_COMA, TraceWorkload(text))

    def test_extra_machine_nodes_idle(self, small_params):
        tiny = MachineParams.scaled_down(factor=256, nodes=2, page_size=256)
        workload = make_workload("barnes", intensity=0.1)
        machine = Machine(tiny, Scheme.V_COMA, workload)
        buffer = io.StringIO()
        record_trace(workload, machine.ctx, buffer, max_refs_per_node=20)
        replayed = TraceWorkload(buffer.getvalue())
        big = Machine(small_params, Scheme.V_COMA, replayed)
        assert list(big.node_stream(3)) == []


class TestParsing:
    def test_rejects_non_trace(self):
        with pytest.raises(ReproError):
            TraceWorkload("hello world\n")

    def test_rejects_bad_line(self):
        with pytest.raises(ReproError):
            TraceWorkload("#repro-trace v1 nodes=2 think=4\nN0 X 12\n")

    def test_rejects_out_of_range_node(self):
        with pytest.raises(ReproError):
            TraceWorkload("#repro-trace v1 nodes=2 think=4\nN5 R 0x10\n")

    def test_rejects_empty_trace(self):
        with pytest.raises(ReproError):
            TraceWorkload("#repro-trace v1 nodes=2 think=4\n")

    def test_think_cycles_respected(self):
        trace = "#repro-trace v1 nodes=1 think=9\nN0 R 0x1000\n"
        assert TraceWorkload(trace).think_cycles == 9

    def test_comments_and_blanks_ignored(self):
        trace = (
            "#repro-trace v1 nodes=1 think=4\n"
            "# a comment\n"
            "\n"
            "N0 R 0x1000\n"
        )
        workload = TraceWorkload(trace)
        assert len(workload._streams[0]) == 1
