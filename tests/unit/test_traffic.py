"""Per-segment traffic profiling."""

import pytest

from repro import CustomWorkload, SegmentSpec, make_workload
from repro.analysis import profile_workload
from repro.system.refs import BARRIER, LOCK, READ, UNLOCK, WRITE
from repro.vm.segments import SegmentKind


class TestProfileWorkload:
    def test_counts_by_segment(self, small_params):
        def stream(node, ctx):
            a = ctx.segment("a")
            b = ctx.segment("b")
            yield READ, a.base
            yield READ, a.base + 8
            yield WRITE, b.base
            yield BARRIER, 0

        workload = CustomWorkload(
            [
                SegmentSpec("a", 2 * small_params.page_size),
                SegmentSpec("b", 2 * small_params.page_size),
            ],
            stream,
            name="two",
        )
        profile = profile_workload(small_params, workload)
        nodes = small_params.nodes
        assert profile.segments["a"].reads == 2 * nodes
        assert profile.segments["a"].writes == 0
        assert profile.segments["b"].writes == nodes
        assert profile.barriers == nodes
        assert profile.total_references == 3 * nodes

    def test_lock_ops_counted(self, small_params):
        def stream(node, ctx):
            word = ctx.segment("q").base
            yield LOCK, word
            yield UNLOCK, word

        workload = CustomWorkload(
            [SegmentSpec("q", small_params.page_size)], stream, name="lk"
        )
        profile = profile_workload(small_params, workload)
        assert profile.segments["q"].lock_ops == 2 * small_params.nodes

    def test_distinct_pages(self, small_params):
        page = small_params.page_size

        def stream(node, ctx):
            base = ctx.segment("a").base
            yield READ, base
            yield READ, base + page
            yield READ, base + page + 8  # same page

        workload = CustomWorkload(
            [SegmentSpec("a", 4 * page)], stream, name="pg"
        )
        profile = profile_workload(small_params, workload)
        assert profile.segments["a"].distinct_pages == 2

    def test_write_fraction(self, small_params):
        def stream(node, ctx):
            base = ctx.segment("a").base
            yield READ, base
            yield WRITE, base

        workload = CustomWorkload(
            [SegmentSpec("a", small_params.page_size)], stream, name="wf"
        )
        profile = profile_workload(small_params, workload)
        assert profile.write_fraction == pytest.approx(0.5)
        assert profile.segments["a"].write_fraction == pytest.approx(0.5)

    def test_max_refs_limits(self, small_params):
        workload = make_workload("ocean", intensity=0.2)
        profile = profile_workload(small_params, workload, max_refs_per_node=100)
        assert profile.total_references == 100 * small_params.nodes

    def test_render_mentions_every_segment(self, small_params):
        workload = make_workload("radix", intensity=0.1)
        text = profile_workload(small_params, workload, max_refs_per_node=200).render()
        for name in ("keys_in", "keys_out", "histogram"):
            assert name in text

    def test_private_kind_propagated(self, small_params):
        workload = make_workload("raytrace", intensity=0.3)
        profile = profile_workload(small_params, workload, max_refs_per_node=400)
        stacks = [s for s in profile.segments.values() if s.name.startswith("stack")]
        assert stacks and all(s.kind == "private" for s in stacks)

    def test_radix_character(self, small_params):
        """The generator matches its intended RADIX shape: read-only
        input, write-only output."""
        profile = profile_workload(
            small_params, make_workload("radix", intensity=0.2)
        )
        assert profile.segments["keys_in"].write_fraction == 0.0
        assert profile.segments["keys_out"].write_fraction == 1.0
