"""Workload generators: determinism, bounds, balance, character."""

import itertools

import pytest

from repro import MachineParams, Machine, Scheme, make_workload
from repro.system.refs import BARRIER, LOCK, READ, UNLOCK, WRITE
from repro.workloads import PAPER_ORDER, WORKLOADS
from repro.workloads.base import Workload, interleave
from repro.workloads.raytrace import RaytraceWorkload


@pytest.fixture
def ctx_for(small_params):
    """Build a real WorkloadContext (segments allocated) for a workload."""

    def build(workload):
        machine = Machine(small_params, Scheme.V_COMA, workload)
        return machine.ctx

    return build


def take(iterator, n):
    return list(itertools.islice(iterator, n))


class TestRegistry:
    def test_all_six_benchmarks_registered(self):
        assert set(PAPER_ORDER) == set(WORKLOADS)
        assert len(WORKLOADS) == 6

    def test_make_workload_by_name(self):
        wl = make_workload("radix")
        assert wl.name == "radix"

    def test_make_workload_case_insensitive(self):
        assert make_workload("OCEAN").name == "ocean"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_workload("nope")

    def test_config_forwarded(self):
        wl = make_workload("radix", passes=3)
        assert wl.passes == 3


class TestStreamContracts:
    def test_deterministic(self, ctx_for, workload_name):
        wl = make_workload(workload_name, intensity=0.1)
        ctx = ctx_for(wl)
        a = take(wl.node_stream(0, ctx), 500)
        b = take(wl.node_stream(0, ctx), 500)
        assert a == b

    def test_nodes_differ(self, ctx_for, workload_name):
        wl = make_workload(workload_name, intensity=0.1)
        ctx = ctx_for(wl)
        a = take(wl.node_stream(0, ctx), 300)
        b = take(wl.node_stream(1, ctx), 300)
        assert a != b

    def test_addresses_inside_declared_segments(self, ctx_for, workload_name):
        wl = make_workload(workload_name, intensity=0.1)
        ctx = ctx_for(wl)
        segments = list(ctx.segments.values())
        for op, value in take(wl.node_stream(0, ctx), 2000):
            if op in (READ, WRITE, LOCK, UNLOCK):
                assert any(s.contains(value) for s in segments), hex(value)

    def test_barriers_balanced_across_nodes(self, ctx_for, workload_name, small_params):
        wl = make_workload(workload_name, intensity=0.1)
        ctx = ctx_for(wl)
        barrier_seqs = []
        for node in range(small_params.nodes):
            seq = [v for op, v in wl.node_stream(node, ctx) if op == BARRIER]
            barrier_seqs.append(seq)
        assert all(seq == barrier_seqs[0] for seq in barrier_seqs)
        assert barrier_seqs[0]  # at least one barrier

    def test_locks_balanced(self, ctx_for, workload_name):
        wl = make_workload(workload_name, intensity=0.1)
        ctx = ctx_for(wl)
        events = list(wl.node_stream(0, ctx))
        locks = sum(1 for op, _ in events if op == LOCK)
        unlocks = sum(1 for op, _ in events if op == UNLOCK)
        assert locks == unlocks

    def test_intensity_scales_stream_length(self, ctx_for, workload_name):
        heavy = make_workload(workload_name, intensity=0.4)
        light = make_workload(workload_name, intensity=0.1)
        ctx = ctx_for(heavy)
        heavy_len = len(list(heavy.node_stream(0, ctx)))
        light_len = len(list(light.node_stream(0, ctx)))
        assert light_len < heavy_len


class TestCharacter:
    def test_radix_is_write_heavy(self, ctx_for):
        wl = make_workload("radix", intensity=0.2)
        ctx = ctx_for(wl)
        events = list(wl.node_stream(0, ctx))
        writes = sum(1 for op, _ in events if op == WRITE)
        reads = sum(1 for op, _ in events if op == READ)
        assert writes > 0.4 * (reads + writes)

    def test_raytrace_is_read_mostly(self, ctx_for):
        wl = make_workload("raytrace", intensity=0.3)
        ctx = ctx_for(wl)
        events = list(wl.node_stream(0, ctx))
        writes = sum(1 for op, _ in events if op == WRITE)
        reads = sum(1 for op, _ in events if op == READ)
        assert reads > 2 * writes

    def test_ocean_touches_neighbour_band(self, ctx_for, small_params):
        wl = make_workload("ocean", intensity=0.3)
        ctx = ctx_for(wl)
        # Node 1 must read some addresses inside node 0's and node 2's
        # bands (the shared boundary rows).
        grid = ctx.segment("grid_a")
        band = None
        reads = {v for op, v in wl.node_stream(1, ctx) if op == READ and grid.contains(v)}
        own_lo = min(reads)
        own_hi = max(reads)
        assert own_hi - own_lo > 0  # sanity: spans more than a point

    def test_radix_output_pages_shared_across_nodes(self, ctx_for, small_params):
        wl = make_workload("radix", intensity=0.2)
        ctx = ctx_for(wl)
        out = ctx.segment("keys_out")
        page = small_params.page_size

        def write_pages(node):
            return {
                v // page
                for op, v in wl.node_stream(node, ctx)
                if op == WRITE and out.contains(v)
            }

        shared = write_pages(0) & write_pages(1)
        assert shared  # the sharing effect's precondition

    @staticmethod
    def _stack_colors(machine, wl):
        """Colors per group: {group: set of colors of its elements}."""
        params = machine.params
        g = params.am_way_size // params.page_size
        depth = wl.effective_stack_depth(params)
        groups = wl.effective_stack_groups(params)
        colors = {}
        for group in range(groups):
            colors[group] = {
                (machine.space[f"stack{n}_g{group}_e{i}"].base // params.page_size) % g
                for n in range(params.nodes)
                for i in range(depth)
            }
        return colors

    def test_raytrace_v1_groups_collide_in_distinct_colors(self, small_params):
        # V1: all nodes' elements of one group share a single color, and
        # different groups pollute different colors.
        wl = RaytraceWorkload()
        machine = Machine(small_params, Scheme.V_COMA, wl)
        colors = self._stack_colors(machine, wl)
        assert all(len(c) == 1 for c in colors.values())
        distinct = {next(iter(c)) for c in colors.values()}
        assert len(distinct) == len(colors)

    def test_raytrace_v2_stacks_spread(self, small_params):
        wl = RaytraceWorkload.v2()
        machine = Machine(small_params, Scheme.V_COMA, wl)
        colors = self._stack_colors(machine, wl)
        all_colors = set().union(*colors.values())
        elements = sum(len(c) for c in colors.values())
        # Page-aligned padding: consecutive elements take consecutive
        # colors instead of piling onto one per group.
        assert len(all_colors) > len(colors)


class TestHelpers:
    def test_interleave_round_robin(self):
        merged = list(interleave([iter([(0, 1), (0, 2)]), iter([(1, 9)])]))
        assert merged == [(0, 1), (1, 9), (0, 2)]

    def test_scaled_fraction(self, small_params):
        wl = make_workload("ocean")
        bytes_ = wl.scaled(small_params, 0.5)
        assert bytes_ == int(small_params.am_size * small_params.nodes * 0.5)

    def test_scaled_minimum_one_page(self, small_params):
        wl = make_workload("ocean")
        assert wl.scaled(small_params, 0.0000001) == small_params.page_size

    def test_zipf_skew_concentrates(self, ctx_for, small_params):
        from repro.common.rng import make_rng
        from repro.vm.segments import Segment

        seg = Segment("z", base=0, size=64 * 1024)
        flat = [
            v
            for _, v in Workload.zipf_accesses(seg, 3000, make_rng(0, "a"), skew=1.0)
        ]
        skewed = [
            v
            for _, v in Workload.zipf_accesses(seg, 3000, make_rng(0, "a"), skew=4.0)
        ]
        import statistics

        assert statistics.median(skewed) < statistics.median(flat)

    def test_sequential_sweep_wraps(self):
        from repro.vm.segments import Segment

        seg = Segment("s", base=1000, size=100)
        events = list(Workload.sequential_sweep(seg, start=90, length=3, stride=8))
        assert [v - 1000 for _, v in events] == [90, 98, 6]
